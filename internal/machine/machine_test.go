package machine

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"faucets/internal/sim"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Name: "turing", NumPE: 128, MemPerPE: 512, CPUType: "x86", Speed: 1.0, CostRate: 0.01}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []Spec{
		{Name: "", NumPE: 1, Speed: 1},
		{Name: "x", NumPE: 0, Speed: 1},
		{Name: "x", NumPE: 1, Speed: 0},
		{Name: "x", NumPE: 1, Speed: 1, CostRate: -1},
		{Name: "x", NumPE: 1, Speed: 1, MemPerPE: -5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestAllocContiguousPreferred(t *testing.T) {
	al := NewAllocator(16)
	a, err := al.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Contiguous() || a.Size() != 8 {
		t.Fatalf("first allocation not contiguous: %v", a)
	}
	if al.Free() != 8 || al.Used() != 8 {
		t.Fatalf("free=%d used=%d", al.Free(), al.Used())
	}
	if al.Utilization() != 0.5 {
		t.Fatalf("utilization=%v", al.Utilization())
	}
}

func TestAllocBestFit(t *testing.T) {
	al := NewAllocator(20)
	a1, _ := al.Alloc(5) // [0,5)
	a2, _ := al.Alloc(5) // [5,10)
	a3, _ := al.Alloc(5) // [10,15)
	_ = a3
	al.Release(a1) // free [0,5) and [15,20)
	al.Release(a2) // free [0,10) and [15,20)
	// A request for 4 should best-fit into the 5-wide block [15,20),
	// not the 10-wide block.
	a4, err := al.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if !a4.Contiguous() {
		t.Fatalf("best-fit allocation fragmented: %v", a4)
	}
	if r := a4.Ranges()[0]; r.Lo != 15 {
		t.Fatalf("best-fit chose block at %d, want 15", r.Lo)
	}
}

func TestAllocFragmentedFallback(t *testing.T) {
	al := NewAllocator(12)
	a1, _ := al.Alloc(4) // [0,4)
	a2, _ := al.Alloc(4) // [4,8)
	_, _ = al.Alloc(4)   // [8,12)
	al.Release(a1)
	_ = a2
	// Free: [0,4). Release the tail too.
	// Now allocate 4: fits contiguous. Allocate more than any block:
	al2 := NewAllocator(12)
	b1, _ := al2.Alloc(4) // [0,4)
	b2, _ := al2.Alloc(4) // [4,8)
	b3, _ := al2.Alloc(4) // [8,12)
	al2.Release(b1)
	al2.Release(b3)
	_ = b2
	// Free blocks: [0,4) and [8,12). Request 6 → must fragment.
	frag, err := al2.Alloc(6)
	if err != nil {
		t.Fatal(err)
	}
	if frag.Contiguous() {
		t.Fatal("expected fragmented allocation")
	}
	if frag.Size() != 6 {
		t.Fatalf("fragmented size=%d", frag.Size())
	}
	if al2.Free() != 2 {
		t.Fatalf("free=%d, want 2", al2.Free())
	}
}

func TestAllocErrors(t *testing.T) {
	al := NewAllocator(4)
	if _, err := al.Alloc(0); err == nil {
		t.Fatal("Alloc(0) accepted")
	}
	if _, err := al.Alloc(5); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversized alloc error = %v", err)
	}
}

func TestReleaseDoublePanics(t *testing.T) {
	al := NewAllocator(4)
	a, _ := al.Alloc(2)
	// Copy the ranges so we can simulate a stale handle.
	stale := &Alloc{ranges: append([]Range(nil), a.Ranges()...)}
	al.Release(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	al.Release(stale)
}

func TestReleaseNilNoop(t *testing.T) {
	al := NewAllocator(4)
	al.Release(nil)
	if al.Free() != 4 {
		t.Fatal("releasing nil changed state")
	}
}

func TestShrink(t *testing.T) {
	al := NewAllocator(16)
	a, _ := al.Alloc(10)
	if err := al.Shrink(a, 4); err != nil {
		t.Fatal(err)
	}
	if a.Size() != 4 || !a.Contiguous() {
		t.Fatalf("after shrink: size=%d contiguous=%v", a.Size(), a.Contiguous())
	}
	if al.Free() != 12 {
		t.Fatalf("free=%d, want 12", al.Free())
	}
	if err := al.Shrink(a, 0); err == nil {
		t.Fatal("shrink to 0 accepted")
	}
	if err := al.Shrink(a, 9); err == nil {
		t.Fatal("shrink that grows accepted")
	}
}

func TestExpandInPlace(t *testing.T) {
	al := NewAllocator(16)
	a, _ := al.Alloc(4) // [0,4)
	if err := al.Expand(a, 8); err != nil {
		t.Fatal(err)
	}
	if a.Size() != 8 || !a.Contiguous() {
		t.Fatalf("expand broke contiguity: %v size=%d", a, a.Size())
	}
}

func TestExpandLeftward(t *testing.T) {
	al := NewAllocator(16)
	blocker, _ := al.Alloc(4) // [0,4)
	a, _ := al.Alloc(4)       // [4,8)
	fence, _ := al.Alloc(8)   // [8,16)
	_ = fence
	al.Release(blocker) // free [0,4)
	if err := al.Expand(a, 8); err != nil {
		t.Fatal(err)
	}
	if !a.Contiguous() || a.Size() != 8 {
		t.Fatalf("leftward expand failed: %v", a)
	}
	if r := a.Ranges()[0]; r.Lo != 0 || r.Hi != 8 {
		t.Fatalf("expanded range = %v", r)
	}
}

func TestExpandFragmentedFallback(t *testing.T) {
	al := NewAllocator(12)
	a, _ := al.Alloc(2)    // [0,2)
	mid, _ := al.Alloc(4)  // [2,6)
	tail, _ := al.Alloc(6) // [6,12)
	al.Release(tail)       // free [6,12)
	_ = mid
	if err := al.Expand(a, 6); err != nil {
		t.Fatal(err)
	}
	if a.Size() != 6 {
		t.Fatalf("size=%d", a.Size())
	}
	if a.Contiguous() {
		t.Fatal("expected fragmented expansion around the blocker")
	}
	if err := al.Expand(a, 100); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversized expand error = %v", err)
	}
	if err := al.Expand(a, 2); err == nil {
		t.Fatal("expand that shrinks accepted")
	}
}

func TestExpandNoopAndMerge(t *testing.T) {
	al := NewAllocator(8)
	a, _ := al.Alloc(3)
	if err := al.Expand(a, 3); err != nil {
		t.Fatal(err)
	}
	if a.Size() != 3 {
		t.Fatal("no-op expand changed size")
	}
}

func TestPEsAndString(t *testing.T) {
	al := NewAllocator(8)
	a, _ := al.Alloc(3)
	pes := a.PEs()
	if len(pes) != 3 || pes[0] != 0 || pes[2] != 2 {
		t.Fatalf("PEs=%v", pes)
	}
	if !strings.Contains(a.String(), "[0,3)") {
		t.Fatalf("String=%q", a.String())
	}
	empty := &Alloc{}
	if empty.String() != "[]" {
		t.Fatalf("empty String=%q", empty.String())
	}
}

func TestLargestFreeBlock(t *testing.T) {
	al := NewAllocator(10)
	a, _ := al.Alloc(3) // [0,3)
	b, _ := al.Alloc(3) // [3,6)
	_ = b
	al.Release(a)
	// Free: [0,3) and [6,10) → largest 4.
	if got := al.LargestFreeBlock(); got != 4 {
		t.Fatalf("LargestFreeBlock=%d, want 4", got)
	}
}

// Property: under any random sequence of alloc/release/shrink/expand,
// the allocator's free count equals numPE minus the sum of live
// allocation sizes, and no processor is in two live allocations.
func TestAllocatorInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		const numPE = 64
		al := NewAllocator(numPE)
		var live []*Alloc
		for step := 0; step < 200; step++ {
			switch rng.Intn(4) {
			case 0: // alloc
				n := 1 + rng.Intn(16)
				if a, err := al.Alloc(n); err == nil {
					live = append(live, a)
				}
			case 1: // release
				if len(live) > 0 {
					i := rng.Intn(len(live))
					al.Release(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			case 2: // shrink
				if len(live) > 0 {
					a := live[rng.Intn(len(live))]
					if a.Size() > 1 {
						_ = al.Shrink(a, 1+rng.Intn(a.Size()))
					}
				}
			case 3: // expand
				if len(live) > 0 {
					a := live[rng.Intn(len(live))]
					_ = al.Expand(a, a.Size()+rng.Intn(8))
				}
			}
			// Invariants.
			total := 0
			owner := make([]int, numPE)
			for i := range owner {
				owner[i] = -1
			}
			for idx, a := range live {
				total += a.Size()
				for _, p := range a.PEs() {
					if p < 0 || p >= numPE || owner[p] != -1 {
						return false
					}
					owner[p] = idx
				}
			}
			if al.Used() != total || al.Free() != numPE-total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
