package stage

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestChunkedUploadWithChecksum(t *testing.T) {
	s := NewStore()
	s.CreateJob("j1")
	full := []byte("hello faucets staging world")
	digest := Digest(full)
	n, err := s.PutChunk("j1", "in.dat", 0, full[:10], false, "")
	if err != nil || n != 10 {
		t.Fatalf("chunk1: n=%d err=%v", n, err)
	}
	n, err = s.PutChunk("j1", "in.dat", 10, full[10:], true, digest)
	if err != nil || n != int64(len(full)) {
		t.Fatalf("chunk2: n=%d err=%v", n, err)
	}
	got, err := s.Get("j1", "in.dat")
	if err != nil || !bytes.Equal(got, full) {
		t.Fatalf("get: %q err=%v", got, err)
	}
	sum, err := s.SHA256("j1", "in.dat")
	if err != nil || sum != digest {
		t.Fatalf("digest mismatch: %v %v", sum, err)
	}
}

func TestChecksumMismatchDiscardsFile(t *testing.T) {
	s := NewStore()
	s.CreateJob("j")
	_, err := s.PutChunk("j", "f", 0, []byte("data"), true, "00ff")
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err=%v", err)
	}
	// The corrupt upload must be gone so a retry starts clean.
	if _, err := s.Get("j", "f"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("corrupt file retained: %v", err)
	}
	if n, err := s.PutChunk("j", "f", 0, []byte("data"), true, Digest([]byte("data"))); err != nil || n != 4 {
		t.Fatalf("retry failed: %v", err)
	}
}

func TestNonContiguousOffsetRejected(t *testing.T) {
	s := NewStore()
	s.CreateJob("j")
	_, _ = s.PutChunk("j", "f", 0, []byte("abc"), false, "")
	if _, err := s.PutChunk("j", "f", 7, []byte("xyz"), false, ""); !errors.Is(err, ErrOffset) {
		t.Fatalf("err=%v", err)
	}
	// Duplicate chunk (retransmission at old offset) also rejected with
	// the current size reported so the client can resync.
	n, err := s.PutChunk("j", "f", 0, []byte("abc"), false, "")
	if !errors.Is(err, ErrOffset) || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestWriteAfterFinalizeRejected(t *testing.T) {
	s := NewStore()
	s.CreateJob("j")
	_, _ = s.PutChunk("j", "f", 0, []byte("abc"), true, "")
	if _, err := s.PutChunk("j", "f", 3, []byte("more"), false, ""); !errors.Is(err, ErrCompleted) {
		t.Fatalf("err=%v", err)
	}
}

func TestUnknownJobAndFile(t *testing.T) {
	s := NewStore()
	if _, err := s.PutChunk("ghost", "f", 0, nil, false, ""); !errors.Is(err, ErrNoJob) {
		t.Fatalf("err=%v", err)
	}
	if err := s.Put("ghost", "f", nil); !errors.Is(err, ErrNoJob) {
		t.Fatalf("err=%v", err)
	}
	if err := s.Append("ghost", "f", nil); !errors.Is(err, ErrNoJob) {
		t.Fatalf("err=%v", err)
	}
	s.CreateJob("j")
	if _, err := s.Get("j", "absent"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("err=%v", err)
	}
	if _, err := s.List("ghost"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("err=%v", err)
	}
}

func TestAppendAndReadAt(t *testing.T) {
	s := NewStore()
	s.CreateJob("j")
	for i := 0; i < 3; i++ {
		if err := s.Append("j", "out.log", []byte("line\n")); err != nil {
			t.Fatal(err)
		}
	}
	data, eof, err := s.ReadAt("j", "out.log", 0, 5)
	if err != nil || eof || string(data) != "line\n" {
		t.Fatalf("%q eof=%v err=%v", data, eof, err)
	}
	data, eof, err = s.ReadAt("j", "out.log", 10, 0)
	if err != nil || !eof || string(data) != "line\n" {
		t.Fatalf("tail read: %q eof=%v err=%v", data, eof, err)
	}
	data, eof, err = s.ReadAt("j", "out.log", 100, 10)
	if err != nil || !eof || len(data) != 0 {
		t.Fatalf("past-end read: %q eof=%v err=%v", data, eof, err)
	}
	if sz, _ := s.Size("j", "out.log"); sz != 15 {
		t.Fatalf("size=%d", sz)
	}
}

func TestListSortedAndDropJob(t *testing.T) {
	s := NewStore()
	s.CreateJob("j")
	_ = s.Put("j", "b.txt", []byte("b"))
	_ = s.Put("j", "a.txt", []byte("a"))
	names, err := s.List("j")
	if err != nil || len(names) != 2 || names[0] != "a.txt" {
		t.Fatalf("names=%v err=%v", names, err)
	}
	s.DropJob("j")
	if _, err := s.List("j"); !errors.Is(err, ErrNoJob) {
		t.Fatal("dropped job still present")
	}
}

func TestCreateJobIdempotent(t *testing.T) {
	s := NewStore()
	s.CreateJob("j")
	_ = s.Put("j", "f", []byte("keep"))
	s.CreateJob("j") // must not clear files
	if got, err := s.Get("j", "f"); err != nil || string(got) != "keep" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	s.CreateJob("j")
	_ = s.Put("j", "f", []byte("abc"))
	got, _ := s.Get("j", "f")
	got[0] = 'X'
	again, _ := s.Get("j", "f")
	if string(again) != "abc" {
		t.Fatal("Get exposed internal buffer")
	}
}

// Property: any split of a payload into contiguous chunks reassembles to
// the original bytes with a matching digest.
func TestChunkReassemblyProperty(t *testing.T) {
	f := func(payload []byte, cuts []uint8) bool {
		s := NewStore()
		s.CreateJob("j")
		digest := Digest(payload)
		off := int64(0)
		rest := payload
		for _, c := range cuts {
			if len(rest) == 0 {
				break
			}
			n := int(c)%len(rest) + 1
			if _, err := s.PutChunk("j", "f", off, rest[:n], false, ""); err != nil {
				return false
			}
			off += int64(n)
			rest = rest[n:]
		}
		if _, err := s.PutChunk("j", "f", off, rest, true, digest); err != nil {
			return false
		}
		got, err := s.Get("j", "f")
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentJobsIsolated(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			id := string(rune('a' + n))
			s.CreateJob(id)
			_ = s.Put(id, "f", []byte(id))
			got, err := s.Get(id, "f")
			if err != nil || string(got) != id {
				t.Errorf("job %s corrupted: %q %v", id, got, err)
			}
		}(i)
	}
	wg.Wait()
}
