package protocol

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestMarkNotOwnerClassification(t *testing.T) {
	base := errors.New("central: user alice lives elsewhere")
	err := MarkNotOwner(base, "10.0.0.2:9000")
	owner, ok := NotOwnerAddr(err)
	if !ok || owner != "10.0.0.2:9000" {
		t.Fatalf("NotOwnerAddr = %q,%v", owner, ok)
	}
	if IsRetryable(err) {
		t.Fatal("NOT_OWNER must not be retryable — the caller must redirect")
	}
	if !errors.Is(err, base) {
		t.Fatal("MarkNotOwner must wrap the cause")
	}
	if MarkNotOwner(nil, "x") != nil {
		t.Fatal("MarkNotOwner(nil) must stay nil")
	}
	if _, ok := NotOwnerAddr(errors.New("plain")); ok {
		t.Fatal("false positive")
	}
	if _, ok := NotOwnerAddr(nil); ok {
		t.Fatal("nil classified")
	}
}

// The NOT_OWNER classification and the embedded owner address must
// survive the trip through ErrorBody — receivers only see RemoteError.
func TestNotOwnerSurvivesWire(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		f, err := ReadFrame(server)
		if err != nil || f.Type != TypeAuthReq {
			return
		}
		_ = WriteErrorFrom(server, MarkNotOwner(errors.New("wrong shard"), "10.9.9.9:7777"))
	}()
	var reply AuthOK
	err := CallTimeout(client, time.Second, TypeAuthReq, AuthReq{User: "u", Password: "p"}, TypeAuthOK, &reply)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	owner, ok := NotOwnerAddr(err)
	if !ok || owner != "10.9.9.9:7777" {
		t.Fatalf("redirect lost over the wire: %q,%v (err=%v)", owner, ok, err)
	}
	if IsRetryable(err) {
		t.Fatal("NOT_OWNER arrived retryable")
	}
}
