package protocol

import (
	"faucets/internal/bidding"
	"faucets/internal/machine"
	"faucets/internal/qos"
)

// Frame type constants. Requests end in "_req", replies in "_ok";
// TypeError is the generic failure reply.
const (
	TypeError = "error"

	// Client ↔ Faucets Central Server.
	TypeAuthReq        = "auth_req"
	TypeAuthOK         = "auth_ok"
	TypeListServersReq = "list_servers_req"
	TypeListServersOK  = "list_servers_ok"
	TypeListAppsReq    = "list_apps_req"
	TypeListAppsOK     = "list_apps_ok"
	TypeCreditsReq     = "credits_req"
	TypeCreditsOK      = "credits_ok"

	// Daemon ↔ Central Server.
	TypeRegisterReq   = "register_req"
	TypeRegisterOK    = "register_ok"
	TypePollReq       = "poll_req"
	TypePollOK        = "poll_ok"
	TypeVerifyReq     = "verify_req"
	TypeVerifyOK      = "verify_ok"
	TypeSettleReq     = "settle_req"
	TypeSettleOK      = "settle_ok"
	TypeWeatherReq    = "weather_req"
	TypeWeatherOK     = "weather_ok"
	TypePeerListReq   = "peer_list_req"
	TypePeerVerifyReq = "peer_verify_req"
	TypeHistoryReq    = "history_req"
	TypeHistoryOK     = "history_ok"

	// Central Server shard ↔ shard (consistent-hash mesh).
	TypeGossipReq       = "gossip_req"
	TypeGossipOK        = "gossip_ok"
	TypeForwardSettleReq = "forward_settle_req"

	// Client ↔ Daemon.
	TypeBidReq      = "bid_req"
	TypeBidOK       = "bid_ok"
	TypeBidBatchReq = "bid_batch_req"
	TypeBidBatchOK  = "bid_batch_ok"
	TypeCommitReq   = "commit_req"
	TypeCommitOK    = "commit_ok"
	TypeSubmitReq   = "submit_req"
	TypeSubmitOK    = "submit_ok"
	TypeUploadReq   = "upload_req"
	TypeUploadOK    = "upload_ok"
	TypeStatusReq   = "status_req"
	TypeStatusOK    = "status_ok"
	TypeOutputReq   = "output_req"
	TypeOutputOK    = "output_ok"
	TypeKillReq     = "kill_req"
	TypeKillOK      = "kill_ok"

	// Job/Daemon ↔ AppSpector, Client ↔ AppSpector.
	TypeASRegisterReq = "as_register_req"
	TypeASRegisterOK  = "as_register_ok"
	TypeTelemetry     = "telemetry"
	TypeWatchReq      = "watch_req"
	TypeWatchOK       = "watch_ok"
	TypeWatchEnd      = "watch_end"
)

// ErrorBody carries a remote failure description. Retryable marks a
// transient server-side failure (the request itself was acceptable);
// absent on the wire it decodes false, so old peers interoperate.
type ErrorBody struct {
	Message   string `json:"message"`
	Retryable bool   `json:"retryable,omitempty"`
}

// AuthReq authenticates a user to the Faucets Central Server with a
// userid/password pair (paper §2.2).
type AuthReq struct {
	User     string `json:"user"`
	Password string `json:"password"`
}

// AuthOK returns the session token embedded in subsequent requests.
// Mechanism, when set, advertises the grid's default market mechanism
// (one of the qos.Mechanism* names); clients without an explicit
// -mechanism adopt it. Shards, when set, is the full shard-ring address
// list of a sharded Central Server mesh; clients cache it to route
// future logins straight to the owning shard. Absent (single-shard
// grids) the login path is byte-identical to the pre-sharding wire.
type AuthOK struct {
	Token     string   `json:"token"`
	Mechanism string   `json:"mechanism,omitempty"`
	Shards    []string `json:"shards,omitempty"`
}

// ServerInfo is one entry of the Central Server's directory of Compute
// Servers (paper §2).
type ServerInfo struct {
	Spec machine.Spec `json:"spec"`
	Addr string       `json:"addr"` // host:port of the server's Faucets Daemon
	Apps []string     `json:"apps"` // exported "Known Applications" (§2.2)
	// Home is the cluster name for bartering home-cluster affinity
	// (§5.5.3); equals Spec.Name by default.
	Home string `json:"home,omitempty"`
	// UsedPE is the server's busy-processor count from its most recent
	// liveness poll — the published weather the posted-price commodity
	// market derives each server's post from, with no extra round trip.
	UsedPE int `json:"used_pe,omitempty"`
}

// ListServersReq asks the Central Server for Compute Servers matching a
// contract. Filters are applied server-side (§5.1).
type ListServersReq struct {
	Token    string        `json:"token"`
	Contract *qos.Contract `json:"contract,omitempty"` // nil lists everything
}

// ListServersOK carries the filtered directory.
type ListServersOK struct {
	Servers []ServerInfo `json:"servers"`
}

// ListAppsReq asks for the applications a user may run.
type ListAppsReq struct {
	Token string `json:"token"`
}

// ListAppsOK lists registered applications.
type ListAppsOK struct {
	Apps []string `json:"apps"`
}

// CreditsReq queries the bartering ledger (§5.5.3).
type CreditsReq struct {
	Token   string `json:"token"`
	Cluster string `json:"cluster"`
}

// CreditsOK returns a cluster's credit balance.
type CreditsOK struct {
	Cluster string  `json:"cluster"`
	Credits float64 `json:"credits"`
}

// PeerListReq is the Central-Server-to-Central-Server directory
// exchange of the distributed Faucets system (§5.1). Unlike
// ListServersReq it carries no user token (peers are trusted
// infrastructure) and is answered with the local directory only, so
// federation never recurses.
type PeerListReq struct {
	Contract *qos.Contract `json:"contract,omitempty"`
}

// PeerVerifyReq asks a peer Central Server whether it can vouch for a
// user's token (federated authentication, §5.1). Answered from the
// local session store only — never relayed onward — so verification
// cannot cycle through the peer graph.
type PeerVerifyReq struct {
	User  string `json:"user"`
	Token string `json:"token"`
}

// RegisterReq announces a Faucets Daemon to the Central Server at
// startup (paper §2: "at startup each FD registers itself with the
// Faucets Central Server").
type RegisterReq struct {
	Info ServerInfo `json:"info"`
}

// RegisterOK acknowledges registration.
type RegisterOK struct{}

// PollReq is the Central Server's liveness/status probe ("refreshes the
// list by periodically polling the corresponding FDs").
type PollReq struct{}

// PollOK reports the daemon's dynamic state, used by the §5.1 dynamic
// filters.
type PollOK struct {
	UsedPE   int `json:"used_pe"`
	QueueLen int `json:"queue_len"`
	Running  int `json:"running"`
}

// VerifyReq is the daemon's re-verification of a client's credentials
// with the Central Server ("since the FD does not have any accounting
// information, it contacts the Faucets Central Server again to verify
// the user's authenticity", §2.2).
type VerifyReq struct {
	User  string `json:"user"`
	Token string `json:"token"`
}

// VerifyOK confirms the user.
type VerifyOK struct {
	User string `json:"user"`
}

// SettleReq reports a finished job's billing to the Central Server:
// price actually charged and, in bartering mode, the credit transfer
// between home cluster and executing cluster. The contract shape (App,
// MinPE, MaxPE) rides along so the §5.2.1 history keeps per-bucket
// price statistics — without it every settled contract would collapse
// into one histogram bucket and bid generators would price blind.
type SettleReq struct {
	JobID       string  `json:"job_id"`
	User        string  `json:"user"`
	Server      string  `json:"server"`
	HomeCluster string  `json:"home_cluster,omitempty"`
	App         string  `json:"app,omitempty"`
	MinPE       int     `json:"min_pe,omitempty"`
	MaxPE       int     `json:"max_pe,omitempty"`
	Price       float64 `json:"price"`
	CPUSeconds  float64 `json:"cpu_seconds"`
}

// SettleOK acknowledges settlement.
type SettleOK struct{}

// WeatherReq asks the Central Server for the grid-weather report of
// §5.2.1 — the global information bid generators consult ("how busy is
// the entire computational grid likely to be…?").
type WeatherReq struct{}

// WeatherOK carries the report; the body mirrors weather.Report.
type WeatherOK struct {
	Time              float64            `json:"time"`
	GridUtilization   float64            `json:"grid_utilization"`
	Servers           int                `json:"servers"`
	TotalPE           int                `json:"total_pe"`
	Contracts         int                `json:"contracts"`
	MeanMultiplier    float64            `json:"mean_multiplier"`
	BucketMultipliers map[string]float64 `json:"bucket_multipliers,omitempty"`
}

// HistoryReq asks the Central Server for recent settled contracts
// similar to a proposed one (§5.2.1: "maintaining a history of every
// individual contract over recent time periods"). Similarity is the
// processor-demand bucket of MaxPE.
type HistoryReq struct {
	MaxPE int `json:"max_pe"`
	Limit int `json:"limit"`
}

// HistoryRecord mirrors one settled contract for bid generators.
type HistoryRecord struct {
	Time       float64 `json:"time"`
	App        string  `json:"app"`
	MinPE      int     `json:"min_pe"`
	MaxPE      int     `json:"max_pe"`
	Multiplier float64 `json:"multiplier"`
}

// HistoryOK returns the matching recent contracts, newest first.
type HistoryOK struct {
	Records []HistoryRecord `json:"records"`
}

// WeatherDigest is the compact grid-weather summary a shard gossips to
// its peers: fleet size and the price signal, but not the per-bucket
// multiplier map (buckets stay local — they are advisory and large).
type WeatherDigest struct {
	Servers        int     `json:"servers"`
	TotalPE        int     `json:"total_pe"`
	UsedPE         int     `json:"used_pe"`
	Contracts      int     `json:"contracts"`
	MeanMultiplier float64 `json:"mean_multiplier"`
}

// GossipReq is the periodic shard-to-shard digest of a sharded Central
// Server mesh: the sender's live local directory entries plus its
// weather summary. Receivers cache the digest per sender, replacing the
// per-request peer fan-out of FederatedServers — N shards no longer do
// N× polling of every daemon. Seq increases monotonically per sender so
// a reordered stale digest can never overwrite a newer one.
type GossipReq struct {
	From    string        `json:"from"` // sender's shard address (ring identity)
	Seq     uint64        `json:"seq"`
	Servers []ServerInfo  `json:"servers"`
	Weather WeatherDigest `json:"weather"`
}

// GossipOK acknowledges a digest.
type GossipOK struct{}

// ForwardSettleReq is a settlement forwarded one hop from the shard a
// daemon reported to, to the shard owning the settling user's
// accounting. It reuses SettleReq's shape under a distinct type so the
// receiver can never forward again — the type itself bounds the hop
// count at one.
type ForwardSettleReq struct {
	JobID       string  `json:"job_id"`
	User        string  `json:"user"`
	Server      string  `json:"server"`
	HomeCluster string  `json:"home_cluster,omitempty"`
	App         string  `json:"app,omitempty"`
	MinPE       int     `json:"min_pe,omitempty"`
	MaxPE       int     `json:"max_pe,omitempty"`
	Price       float64 `json:"price"`
	CPUSeconds  float64 `json:"cpu_seconds"`
}

// BidReq solicits a bid from a daemon for a contract.
type BidReq struct {
	User     string        `json:"user"`
	Token    string        `json:"token"`
	Contract *qos.Contract `json:"contract"`
}

// BidOK returns the daemon's offer.
type BidOK struct {
	Bid bidding.Bid `json:"bid"`
}

// BidBatchReq solicits bids for several contracts in one frame: one
// round trip and one credential verification cover the whole batch,
// which is what keeps continuous auction rounds cheap when a client
// shops many jobs at once (paper §5.1's "competition for every job").
type BidBatchReq struct {
	User      string          `json:"user"`
	Token     string          `json:"token"`
	Contracts []*qos.Contract `json:"contracts"`
}

// BidBatchItem is one per-contract answer within a batch reply. OK is
// false when the daemon declines that contract (validation failure or
// no bid); the Bid field is meaningful only when OK is true.
type BidBatchItem struct {
	OK  bool        `json:"ok"`
	Bid bidding.Bid `json:"bid"`
}

// BidBatchOK answers a batch solicit with one item per requested
// contract, in request order.
type BidBatchOK struct {
	Bids []BidBatchItem `json:"bids"`
}

// CommitReq is phase two of the award protocol (§5.3): the client asks
// the chosen daemon to firmly commit to its bid.
type CommitReq struct {
	User  string      `json:"user"`
	Token string      `json:"token"`
	JobID string      `json:"job_id"`
	Bid   bidding.Bid `json:"bid"`
}

// CommitOK confirms the contract.
type CommitOK struct {
	JobID string `json:"job_id"`
}

// SubmitReq submits a committed job for execution.
type SubmitReq struct {
	User     string        `json:"user"`
	Token    string        `json:"token"`
	JobID    string        `json:"job_id"`
	Contract *qos.Contract `json:"contract"`
}

// SubmitOK acknowledges the start of the job.
type SubmitOK struct {
	JobID string `json:"job_id"`
}

// UploadReq stages one input file chunk to the daemon before the job
// starts (§2: "at this point the client uploads the input files to the
// chosen FD").
type UploadReq struct {
	JobID  string `json:"job_id"`
	Name   string `json:"name"`
	Offset int64  `json:"offset"`
	Data   []byte `json:"data"` // base64 via encoding/json
	// SHA256 is the hex digest of the complete file; sent with the final
	// chunk (Last == true) for integrity verification.
	SHA256 string `json:"sha256,omitempty"`
	Last   bool   `json:"last"`
}

// UploadOK acknowledges a staged chunk.
type UploadOK struct {
	Received int64 `json:"received"`
}

// StatusReq queries a job's state.
type StatusReq struct {
	Token string `json:"token"`
	JobID string `json:"job_id"`
}

// StatusOK reports job state and progress.
type StatusOK struct {
	JobID    string  `json:"job_id"`
	State    string  `json:"state"`
	PEs      int     `json:"pes"`
	Progress float64 `json:"progress"` // fraction of work completed
}

// OutputReq downloads a job's output file (§2: "at any point of the job
// execution the user can download the output files generated by the
// job").
type OutputReq struct {
	Token  string `json:"token"`
	JobID  string `json:"job_id"`
	Name   string `json:"name"`
	Offset int64  `json:"offset"`
	Limit  int64  `json:"limit"`
}

// KillReq terminates the caller's job — part of letting users "interact
// with their jobs" (§2). Only the submitting user may kill a job.
type KillReq struct {
	User  string `json:"user"`
	Token string `json:"token"`
	JobID string `json:"job_id"`
}

// KillOK confirms termination.
type KillOK struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
}

// OutputOK returns a chunk of output data.
type OutputOK struct {
	Data   []byte `json:"data"`
	EOF    bool   `json:"eof"`
	SHA256 string `json:"sha256,omitempty"`
}

// ASRegisterReq registers a started job with the AppSpector server
// ("once the job starts, the FD registers the running job with the
// AppSpector Server", §2).
type ASRegisterReq struct {
	JobID  string `json:"job_id"`
	Owner  string `json:"owner"`
	Server string `json:"server"`
	App    string `json:"app"`
}

// ASRegisterOK acknowledges AppSpector registration.
type ASRegisterOK struct{}

// Telemetry is one monitoring sample streamed from the running job to
// AppSpector, and from AppSpector to each watching client. It carries
// the two sections of the paper's Fig 3 display: a generic processor
// utilization/throughput section and an application-specific output
// section.
type Telemetry struct {
	JobID  string  `json:"job_id"`
	Time   float64 `json:"time"`
	PEs    int     `json:"pes"`
	Util   float64 `json:"util"`             // processor utilization [0,1]
	Done   float64 `json:"done"`             // fraction of work completed
	State  string  `json:"state"`            // job lifecycle state
	Output string  `json:"output,omitempty"` // application-specific text
}

// WatchReq subscribes a client to a job's telemetry stream. Multiple
// clients can monitor the same job simultaneously (§2); the server
// buffers history so late watchers see the full record.
type WatchReq struct {
	Token string `json:"token"`
	JobID string `json:"job_id"`
	// FromStart requests buffered history before live samples.
	FromStart bool `json:"from_start"`
}

// WatchOK opens the stream; Telemetry frames follow until TypeWatchEnd.
type WatchOK struct {
	JobID string `json:"job_id"`
}
