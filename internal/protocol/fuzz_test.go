package protocol

import (
	"bytes"
	"testing"

	"faucets/internal/bidding"
	"faucets/internal/qos"
)

// FuzzReadFrame throws arbitrary bytes at the frame decoder: it must
// never panic or allocate unbounded memory, only return errors.
func FuzzReadFrame(f *testing.F) {
	// Seed with a valid frame of each codec and a few corruptions.
	var good bytes.Buffer
	_ = WriteFrame(&good, TypeAuthReq, AuthReq{User: "u", Password: "p"})
	f.Add(good.Bytes())
	if bin, err := AppendFrame(nil, CodecBinary, 1, TypeVerifyReq, VerifyReq{User: "u", Token: "t"}); err == nil {
		f.Add(bin)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, '{'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 5, 'h', 'e', 'l', 'l', 'o'})
	f.Add([]byte{0, 0, 0, 12, binMagic, 1, 12, 0, 0, 0, 0, 0, 0, 0, 1, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if fr.Codec() == CodecBinary {
			// Binary bodies are raw bytes; structured decode may refuse a
			// crafted body, but a body that decodes must re-encode.
			var v any
			if err := Decode(fr, fr.Type, &v); err != nil {
				return
			}
			if _, err := AppendFrame(nil, CodecBinary, fr.ID, fr.Type, v); err != nil {
				t.Fatalf("re-encode of decoded binary frame failed: %v", err)
			}
			return
		}
		// Decoded JSON frames must round-trip through the writer.
		var buf bytes.Buffer
		if fr.Body != nil {
			var v any
			_ = Decode(fr, fr.Type, &v)
		}
		if err := WriteFrame(&buf, fr.Type, fr.Body); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
	})
}

// FuzzBinaryFrameRoundtrip mirrors FuzzReadFrame for the binary codec:
// any crafted payload that parses and decodes must re-encode to a frame
// that parses and decodes to byte-identical canonical bytes. Comparing
// the two canonical encodings (rather than decoded structs) keeps NaN
// float bit patterns from tripping a struct comparison.
func FuzzBinaryFrameRoundtrip(f *testing.F) {
	seed := func(typ string, id uint64, body any) {
		b, err := AppendFrame(nil, CodecBinary, id, typ, body)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	contract := &qos.Contract{App: "a", MinPE: 1, MaxPE: 8, Work: 100,
		Phases: []qos.Phase{{Name: "p", Work: 100, MinPE: 1, MaxPE: 8}}}
	bid := bidding.Bid{Server: "s", Price: 1.5, Multiplier: 1.1, EstCompletion: 10, ExpiresAt: 20}
	seed(TypeError, 1, ErrorBody{Message: "m", Retryable: true})
	seed(TypeBidReq, 2, BidReq{User: "u", Token: "t", Contract: contract})
	seed(TypeBidOK, 3, BidOK{Bid: bid})
	seed(TypeCommitReq, 4, CommitReq{User: "u", Token: "t", JobID: "j", Bid: bid})
	seed(TypeSubmitReq, 5, SubmitReq{User: "u", Token: "t", JobID: "j", Contract: contract})
	seed(TypeSettleReq, 6, SettleReq{JobID: "j", User: "u", Server: "s", Price: 1, CPUSeconds: 2})
	seed(TypePollOK, 7, PollOK{UsedPE: 1, QueueLen: 2, Running: 3})
	seed(TypeVerifyReq, 8, VerifyReq{User: "u", Token: "t"})
	seed(TypeBidBatchReq, 9, BidBatchReq{User: "u", Token: "t", Contracts: []*qos.Contract{contract, nil}})
	seed(TypeBidBatchOK, 10, BidBatchOK{Bids: []BidBatchItem{{OK: true, Bid: bid}, {}}})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil || fr.Codec() != CodecBinary {
			return
		}
		var v any
		if err := Decode(fr, fr.Type, &v); err != nil {
			return // malformed body: rejected is the correct outcome
		}
		out, err := AppendFrame(nil, CodecBinary, fr.ID, fr.Type, v)
		if err != nil {
			t.Fatalf("re-encode failed for decodable %s: %v", fr.Type, err)
		}
		fr2, err := ReadFrame(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("canonical encoding unreadable: %v", err)
		}
		var v2 any
		if err := Decode(fr2, fr2.Type, &v2); err != nil {
			t.Fatalf("canonical encoding undecodable: %v", err)
		}
		out2, err := AppendFrame(nil, CodecBinary, fr2.ID, fr2.Type, v2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("binary canonical form unstable for %s:\n first %x\nsecond %x", fr.Type, out, out2)
		}
	})
}

// FuzzTelemetryRoundTrip checks write→read→decode over arbitrary field
// contents.
func FuzzTelemetryRoundTrip(f *testing.F) {
	f.Add("job-1", 1.5, 8, "output line")
	f.Add("", 0.0, 0, "")
	f.Fuzz(func(t *testing.T, id string, tm float64, pes int, out string) {
		in := Telemetry{JobID: id, Time: tm, PEs: pes, Output: out}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, TypeTelemetry, in); err != nil {
			t.Skip() // e.g. NaN time: JSON cannot encode — fine
		}
		fr, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		var got Telemetry
		if err := Decode(fr, TypeTelemetry, &got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.JobID != in.JobID || got.PEs != in.PEs || got.Output != in.Output {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
		}
	})
}
