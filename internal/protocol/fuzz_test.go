package protocol

import (
	"bytes"
	"testing"
)

// FuzzReadFrame throws arbitrary bytes at the frame decoder: it must
// never panic or allocate unbounded memory, only return errors.
func FuzzReadFrame(f *testing.F) {
	// Seed with a valid frame and a few corruptions.
	var good bytes.Buffer
	_ = WriteFrame(&good, TypeAuthReq, AuthReq{User: "u", Password: "p"})
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, '{'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 5, 'h', 'e', 'l', 'l', 'o'})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded frames must round-trip through the writer.
		var buf bytes.Buffer
		if fr.Body != nil {
			var v any
			_ = Decode(fr, fr.Type, &v)
		}
		if err := WriteFrame(&buf, fr.Type, fr.Body); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
	})
}

// FuzzTelemetryRoundTrip checks write→read→decode over arbitrary field
// contents.
func FuzzTelemetryRoundTrip(f *testing.F) {
	f.Add("job-1", 1.5, 8, "output line")
	f.Add("", 0.0, 0, "")
	f.Fuzz(func(t *testing.T, id string, tm float64, pes int, out string) {
		in := Telemetry{JobID: id, Time: tm, PEs: pes, Output: out}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, TypeTelemetry, in); err != nil {
			t.Skip() // e.g. NaN time: JSON cannot encode — fine
		}
		fr, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		var got Telemetry
		if err := Decode(fr, TypeTelemetry, &got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.JobID != in.JobID || got.PEs != in.PEs || got.Output != in.Output {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
		}
	})
}
