// Package protocol defines the wire protocol spoken between the Faucets
// components (paper Fig 1): Faucets Client ↔ Faucets Central Server,
// Client ↔ Faucets Daemon, Daemon ↔ Central Server, Daemon ↔ AppSpector,
// and Client ↔ AppSpector.
//
// Frames are length-prefixed JSON: a 4-byte big-endian payload length
// followed by a JSON object {"type": ..., "body": ...}. Length-prefixing
// (rather than newline-delimiting) keeps file-staging payloads and
// embedded output text unconstrained.
package protocol

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds a single frame (16 MiB): large enough for a staging
// chunk, small enough to stop a corrupt length prefix from allocating
// the moon.
const MaxFrame = 16 << 20

// Frame is one protocol message. ID correlates pipelined
// request/response pairs on a shared connection: a pooled caller stamps
// each request with a connection-unique ID and the server echoes it on
// the reply, so multiple in-flight calls can demultiplex answers from
// one stream. One-shot exchanges leave it zero (omitted on the wire).
type Frame struct {
	ID   uint64          `json:"id,omitempty"`
	Type string          `json:"type"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Framing errors.
var (
	ErrFrameTooBig = errors.New("protocol: frame exceeds MaxFrame")
	ErrBadType     = errors.New("protocol: unexpected frame type")
)

// WriteFrame encodes body as JSON and writes a framed message to w.
// When w carries a frame ID (a *ReplyConn on the server side), the
// frame is stamped with it so pipelined callers can match the reply to
// their request.
func WriteFrame(w io.Writer, typ string, body any) error {
	id := uint64(0)
	if rc, ok := w.(interface{ FrameID() uint64 }); ok {
		id = rc.FrameID()
	}
	return writeFrameID(w, id, typ, body)
}

// writeFrameID writes one frame with an explicit request ID.
func writeFrameID(w io.Writer, id uint64, typ string, body any) error {
	var raw json.RawMessage
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("protocol: marshal %s: %w", typ, err)
		}
		raw = b
	}
	payload, err := json.Marshal(Frame{ID: id, Type: typ, Body: raw})
	if err != nil {
		return fmt.Errorf("protocol: marshal frame: %w", err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("protocol: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("protocol: write payload: %w", err)
	}
	return nil
}

// ReadFrame reads one framed message from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // preserve io.EOF for clean-shutdown detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("protocol: read payload: %w", err)
	}
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return Frame{}, fmt.Errorf("protocol: decode frame: %w", err)
	}
	return f, nil
}

// Decode unmarshals a frame body into v, checking the frame type first.
func Decode(f Frame, wantType string, v any) error {
	if f.Type != wantType {
		return fmt.Errorf("%w: got %q, want %q", ErrBadType, f.Type, wantType)
	}
	if v == nil {
		return nil
	}
	if len(f.Body) == 0 {
		return nil
	}
	if err := json.Unmarshal(f.Body, v); err != nil {
		return fmt.Errorf("protocol: decode %s body: %w", f.Type, err)
	}
	return nil
}

// Call writes a request frame and reads the reply, decoding it into
// reply if the reply type matches wantReply. It is the client-side
// helper for every simple request/response exchange in the system.
func Call(rw io.ReadWriter, reqType string, req any, wantReply string, reply any) error {
	if err := WriteFrame(rw, reqType, req); err != nil {
		return err
	}
	f, err := ReadFrame(rw)
	if err != nil {
		return err
	}
	if f.Type == TypeError {
		var e ErrorBody
		_ = Decode(f, TypeError, &e)
		return &RemoteError{Message: e.Message, Retryable: e.Retryable}
	}
	return Decode(f, wantReply, reply)
}

// WriteError sends a TypeError frame describing a failure.
func WriteError(w io.Writer, msg string) error {
	return WriteFrame(w, TypeError, ErrorBody{Message: msg})
}

// WriteErrorFrom sends a TypeError frame for err, carrying the
// retryable mark (see MarkRetryable) onto the wire.
func WriteErrorFrom(w io.Writer, err error) error {
	return WriteFrame(w, TypeError, ErrorBody{Message: err.Error(), Retryable: IsRetryable(err)})
}

// ReplyConn wraps a server-side connection so reply frames echo the ID
// of the request being answered. A handler loop calls SetID with each
// request's ID before dispatching; WriteFrame picks the ID up through
// FrameID. Handler loops are single-goroutine per connection, so no
// synchronization is needed.
type ReplyConn struct {
	io.ReadWriter
	id uint64
}

// NewReplyConn wraps rw for ID-stamped replies.
func NewReplyConn(rw io.ReadWriter) *ReplyConn { return &ReplyConn{ReadWriter: rw} }

// SetID records the in-flight request's ID for the next replies.
func (rc *ReplyConn) SetID(id uint64) { rc.id = id }

// FrameID returns the ID replies are stamped with.
func (rc *ReplyConn) FrameID() uint64 { return rc.id }
