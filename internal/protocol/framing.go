// Package protocol defines the wire protocol spoken between the Faucets
// components (paper Fig 1): Faucets Client ↔ Faucets Central Server,
// Client ↔ Faucets Daemon, Daemon ↔ Central Server, Daemon ↔ AppSpector,
// and Client ↔ AppSpector.
//
// Frames are length-prefixed: a 4-byte big-endian payload length
// followed by the payload in one of two codecs. Codec 0 is a JSON
// object {"type": ..., "body": ...}; codec 1 (see binary.go) is a
// compact binary encoding for the hot auction-path message types,
// negotiated per connection. The payload's first byte identifies the
// codec, so readers handle mixed streams statelessly. Length-prefixing
// (rather than newline-delimiting) keeps file-staging payloads and
// embedded output text unconstrained.
package protocol

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// MaxFrame bounds a single frame (16 MiB): large enough for a staging
// chunk, small enough to stop a corrupt length prefix from allocating
// the moon.
const MaxFrame = 16 << 20

// maxPooledBuf caps the encode buffers kept in the write pool; a rare
// huge frame (file staging) should not pin megabytes per P forever.
const maxPooledBuf = 64 << 10

// Frame is one protocol message. ID correlates pipelined
// request/response pairs on a shared connection: a pooled caller stamps
// each request with a connection-unique ID and the server echoes it on
// the reply, so multiple in-flight calls can demultiplex answers from
// one stream. One-shot exchanges stamp a process-unique ID for the same
// reason (stale-reply detection, see Call).
type Frame struct {
	ID   uint64          `json:"id,omitempty"`
	Type string          `json:"type"`
	Body json.RawMessage `json:"body,omitempty"`

	// codec records which encoding Body uses (CodecJSON or CodecBinary)
	// so Decode picks the right parser and ReplyConn echoes in kind.
	codec uint8
}

// Codec reports the encoding the frame arrived in.
func (f Frame) Codec() uint8 { return f.codec }

// Framing errors.
var (
	ErrFrameTooBig = errors.New("protocol: frame exceeds MaxFrame")
	ErrBadType     = errors.New("protocol: unexpected frame type")
	// ErrEmptyBody rejects a reply whose type requires fields but whose
	// body is missing — a zero-valued struct must not impersonate data.
	ErrEmptyBody = errors.New("protocol: empty frame body")
)

// IDMismatchError reports a reply frame whose ID does not match the
// request it should answer — the signature of a stale reply left on a
// reused connection by a timed-out earlier call.
type IDMismatchError struct {
	Want, Got uint64
}

func (e *IDMismatchError) Error() string {
	return fmt.Sprintf("protocol: reply frame ID mismatch: got %d, want %d", e.Got, e.Want)
}

// allowEmptyBody lists the frame types whose bodies are legitimately
// field-free, so an absent body decodes to their zero value. Every other
// type carries required fields and an empty body is a protocol error.
var allowEmptyBody = map[string]bool{
	TypeError:        true, // diagnostic: a bare error frame still signals failure
	TypeRegisterOK:   true,
	TypePollReq:      true,
	TypeSettleOK:     true,
	TypeWeatherReq:   true,
	TypeASRegisterOK: true,
	TypeWatchEnd:     true,
	TypeGossipOK:     true,
}

// writeBufPool recycles frame encode buffers so the steady-state hot
// path allocates nothing for framing.
var writeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// WriteFrame encodes body and writes a framed message to w as a single
// Write call, so frames from writers not sharing a mutex never
// interleave and each frame leaves in one segment. When w carries reply
// metadata (a *ReplyConn on the server side), the frame echoes the
// in-flight request's ID and codec so pipelined callers can match the
// reply to their request in the encoding they used.
func WriteFrame(w io.Writer, typ string, body any) error {
	id := uint64(0)
	if rc, ok := w.(interface{ FrameID() uint64 }); ok {
		id = rc.FrameID()
	}
	return writeFrameCodec(w, frameCodecOf(w), id, typ, body)
}

// frameCodecOf resolves the codec a writer's frames should use: binary
// only when the writer (ReplyConn, negotiated conn wrapper) asks for it.
func frameCodecOf(w io.Writer) uint8 {
	if cc, ok := w.(interface{ FrameCodec() uint8 }); ok {
		return cc.FrameCodec()
	}
	return CodecJSON
}

// writeFrameID writes one frame with an explicit request ID (JSON
// codec), the path pooled callers used before codecs were negotiable.
func writeFrameID(w io.Writer, id uint64, typ string, body any) error {
	return writeFrameCodec(w, CodecJSON, id, typ, body)
}

// writeFrameCodec encodes the frame into a pooled buffer and writes it
// with one Write call.
func writeFrameCodec(w io.Writer, codec uint8, id uint64, typ string, body any) error {
	bp := writeBufPool.Get().(*[]byte)
	buf, err := AppendFrame((*bp)[:0], codec, id, typ, body)
	if err == nil {
		if _, werr := w.Write(buf); werr != nil {
			err = fmt.Errorf("protocol: write frame: %w", werr)
		}
	}
	if cap(buf) <= maxPooledBuf {
		*bp = buf[:0]
		writeBufPool.Put(bp)
	}
	return err
}

// AppendFrame appends one complete frame — length prefix included — to
// dst and returns the extended slice. codec is the connection's
// negotiated ceiling: with CodecBinary, types that have a binary
// encoding use it and everything else falls back to JSON, which any
// peer reads statelessly. The append style lets hot paths encode into
// reused buffers with zero per-frame allocations.
func AppendFrame(dst []byte, codec uint8, id uint64, typ string, body any) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length back-patched below
	encoded := false
	if codec >= CodecBinary {
		if code, known := binCodeOf[typ]; known {
			mark := len(dst)
			dst = append(dst, binMagic, CodecBinary, code)
			dst = appendU64(dst, id)
			if out, ok := appendBinaryBody(dst, body); ok {
				dst, encoded = out, true
			} else {
				dst = dst[:mark] // body value has no binary encoder: JSON
			}
		}
	}
	if !encoded {
		var err error
		if dst, err = appendJSONFrame(dst, id, typ, body); err != nil {
			return dst[:start], err
		}
	}
	n := len(dst) - start - 4
	if n > MaxFrame {
		return dst[:start], fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(n))
	return dst, nil
}

// appendJSONFrame assembles the {"id","type","body"} envelope by hand —
// one json.Marshal for the body instead of the old body-then-envelope
// double encode.
func appendJSONFrame(dst []byte, id uint64, typ string, body any) ([]byte, error) {
	dst = append(dst, '{')
	if id != 0 {
		dst = append(dst, `"id":`...)
		dst = strconv.AppendUint(dst, id, 10)
		dst = append(dst, ',')
	}
	dst = append(dst, `"type":`...)
	dst = appendJSONString(dst, typ)
	if body != nil {
		dst = append(dst, `,"body":`...)
		raw, err := json.Marshal(body)
		if err != nil {
			return dst, fmt.Errorf("protocol: marshal %s: %w", typ, err)
		}
		dst = append(dst, raw...)
	}
	return append(dst, '}'), nil
}

// appendJSONString quotes s as a JSON string. The protocol's type names
// are plain ASCII, so the fast path is a straight copy; anything needing
// escapes takes the encoding/json path.
func appendJSONString(dst []byte, s string) []byte {
	plain := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x7f || c == '"' || c == '\\' {
			plain = false
			break
		}
	}
	if plain {
		dst = append(dst, '"')
		dst = append(dst, s...)
		return append(dst, '"')
	}
	raw, err := json.Marshal(s)
	if err != nil { // unreachable: strings always marshal
		return append(dst, `""`...)
	}
	return append(dst, raw...)
}

// ReadFrame reads one framed message from r, allocating a fresh payload
// buffer — safe to hand across goroutines (the pool's read loop does).
// Handler loops that consume each frame before reading the next should
// prefer FrameReader, which reuses its buffer.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // preserve io.EOF for clean-shutdown detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("protocol: read payload: %w", err)
	}
	return parsePayload(payload)
}

// parsePayload decodes one frame payload, sniffing the codec from the
// first byte: JSON frames always open with '{', binary frames with
// binMagic (never a legal first byte of JSON).
func parsePayload(payload []byte) (Frame, error) {
	if len(payload) > 0 && payload[0] == binMagic {
		if len(payload) < binHeaderLen {
			return Frame{}, fmt.Errorf("%w: truncated header (%d bytes)", ErrBinaryFrame, len(payload))
		}
		if v := payload[1]; v != CodecBinary {
			return Frame{}, fmt.Errorf("%w: unsupported codec version %d", ErrBinaryFrame, v)
		}
		code := payload[2]
		var typ string
		if int(code) < len(binTypeOf) {
			typ = binTypeOf[code]
		}
		if typ == "" {
			return Frame{}, fmt.Errorf("%w: unknown type code %d", ErrBinaryFrame, code)
		}
		return Frame{
			ID:    binary.BigEndian.Uint64(payload[3:11]),
			Type:  typ,
			Body:  payload[binHeaderLen:],
			codec: CodecBinary,
		}, nil
	}
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return Frame{}, fmt.Errorf("protocol: decode frame: %w", err)
	}
	return f, nil
}

// FrameReader reads frames from one connection reusing a single payload
// buffer: a server handler loop that fully consumes each frame before
// calling Next again pays no per-frame payload allocation. The returned
// Frame's Body may alias the internal buffer and is valid only until
// the next call to Next; anything retained past that must be copied.
type FrameReader struct {
	r   io.Reader
	buf []byte
}

// NewFrameReader wraps r for buffer-reusing frame reads.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Next reads and parses the next frame.
func (fr *FrameReader) Next() (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	if cap(fr.buf) < n || cap(fr.buf) > maxPooledBuf && n <= maxPooledBuf {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return Frame{}, fmt.Errorf("protocol: read payload: %w", err)
	}
	return parsePayload(payload)
}

// Decode unmarshals a frame body into v, checking the frame type first.
// An empty body is accepted only for the field-free types in
// allowEmptyBody; for anything else it reports ErrEmptyBody rather than
// letting a zero-valued struct flow onward as real data.
func Decode(f Frame, wantType string, v any) error {
	if f.Type != wantType {
		return fmt.Errorf("%w: got %q, want %q", ErrBadType, f.Type, wantType)
	}
	if v == nil {
		return nil
	}
	if len(f.Body) == 0 {
		if allowEmptyBody[f.Type] {
			return nil
		}
		return fmt.Errorf("%w: %s requires fields", ErrEmptyBody, f.Type)
	}
	if f.codec == CodecBinary {
		return decodeBinaryBody(f.Type, f.Body, v)
	}
	if err := json.Unmarshal(f.Body, v); err != nil {
		return fmt.Errorf("protocol: decode %s body: %w", f.Type, err)
	}
	return nil
}

// oneShotID stamps one-shot Call requests with process-unique IDs so a
// stale reply left on a reused connection can be detected.
var oneShotID atomic.Uint64

// Call writes a request frame and reads the reply, decoding it into
// reply if the reply type matches wantReply. It is the client-side
// helper for every simple request/response exchange in the system. The
// request carries a unique frame ID; a reply echoing a different
// non-zero ID is a stale answer to an earlier request and fails with
// *IDMismatchError instead of being silently accepted. (A zero reply ID
// is tolerated for peers predating ID echo.)
func Call(rw io.ReadWriter, reqType string, req any, wantReply string, reply any) error {
	id := oneShotID.Add(1)
	if err := writeFrameCodec(rw, frameCodecOf(rw), id, reqType, req); err != nil {
		return err
	}
	f, err := ReadFrame(rw)
	if err != nil {
		return err
	}
	if f.ID != 0 && f.ID != id {
		return &IDMismatchError{Want: id, Got: f.ID}
	}
	if f.Type == TypeError {
		var e ErrorBody
		_ = Decode(f, TypeError, &e)
		return &RemoteError{Message: e.Message, Retryable: e.Retryable}
	}
	return Decode(f, wantReply, reply)
}

// WriteError sends a TypeError frame describing a failure.
func WriteError(w io.Writer, msg string) error {
	return WriteFrame(w, TypeError, ErrorBody{Message: msg})
}

// WriteErrorFrom sends a TypeError frame for err, carrying the
// retryable mark (see MarkRetryable) onto the wire.
func WriteErrorFrom(w io.Writer, err error) error {
	return WriteFrame(w, TypeError, ErrorBody{Message: err.Error(), Retryable: IsRetryable(err)})
}

// ReplyConn wraps a server-side connection so reply frames echo the ID
// and codec of the request being answered. A handler loop calls SetEcho
// with each request frame before dispatching; WriteFrame picks the
// metadata up through FrameID/FrameCodec, so a binary request gets a
// binary reply and a JSON request a JSON one on the very same
// connection. Handler loops are single-goroutine per connection, so no
// synchronization is needed.
type ReplyConn struct {
	io.ReadWriter
	id    uint64
	codec uint8
}

// NewReplyConn wraps rw for echo-stamped replies.
func NewReplyConn(rw io.ReadWriter) *ReplyConn { return &ReplyConn{ReadWriter: rw} }

// SetEcho records the in-flight request's ID and codec for the replies.
func (rc *ReplyConn) SetEcho(f Frame) { rc.id, rc.codec = f.ID, f.codec }

// SetID records the in-flight request's ID for the next replies (JSON
// codec; SetEcho supersedes it where the request frame is at hand).
func (rc *ReplyConn) SetID(id uint64) { rc.id = id }

// FrameID returns the ID replies are stamped with.
func (rc *ReplyConn) FrameID() uint64 { return rc.id }

// FrameCodec returns the codec replies are encoded with.
func (rc *ReplyConn) FrameCodec() uint8 { return rc.codec }
