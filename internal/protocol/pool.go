package protocol

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file adds connection pooling and request pipelining on top of
// the one-shot DialCall path. Every RPC in the system used to pay a TCP
// handshake (client↔central↔daemon), which makes auctions expensive
// relative to jobs — the opposite of what the paper's economic model
// needs ("competition for every job", §5.1). A Pool keeps N persistent
// connections per address; frame-level request IDs let many in-flight
// calls share one connection, a reader goroutine demultiplexes replies,
// idle connections are reaped, and broken ones are redialed with the
// existing jittered Retry policy.

// Pool defaults.
const (
	// DefaultPoolSize is the persistent-connection budget per address.
	DefaultPoolSize = 2
	// DefaultIdleTimeout is how long an unused connection survives
	// before the reaper closes it.
	DefaultIdleTimeout = 30 * time.Second
)

// Pool errors.
var (
	ErrPoolClosed = errors.New("protocol: pool closed")
	// ErrBreakerOpen is returned by Pool.Call when the address's circuit
	// breaker refuses the call: the peer has been failing or stalling,
	// and the fast refusal replaces a doomed dial-and-timeout. The error
	// is immediate — callers pay nanoseconds, not a deadline.
	ErrBreakerOpen = errors.New("protocol: circuit breaker open")
	// errConnBroken marks a checkout that raced a connection failure;
	// Pool.Call treats it like any transport error and redials.
	errConnBroken = errors.New("protocol: pooled connection broken")
)

// HealthPolicy lets a per-address failure detector veto calls and
// observe their outcomes; health.Set is the standard implementation.
// Implementations must be safe for concurrent use.
type HealthPolicy interface {
	// Allow reports whether a call to addr may proceed. False means the
	// address's breaker is OPEN and Pool.Call fails fast with
	// ErrBreakerOpen instead of dialing.
	Allow(addr string) bool
	// Record feeds one call attempt's outcome: observed latency and the
	// transport error (nil on success). The pool reports remote
	// refusals as success — the peer answered, so the transport is
	// healthy; only dial/deadline/broken-pipe failures indict it.
	Record(addr string, d time.Duration, err error)
}

// PoolObserver receives pool lifecycle events; telemetry.PoolMetrics is
// the standard implementation (faucets_rpc_pool_* series). A nil
// observer is silently skipped.
type PoolObserver interface {
	// PoolConnOpen tracks the open-connection gauge (+1 dial, -1 close).
	PoolConnOpen(delta int)
	// PoolCheckout counts one connection handed to a call.
	PoolCheckout()
	// PoolRedial counts a fresh dial forced by a broken connection.
	PoolRedial()
	// PoolIdleReap counts a connection closed by the idle reaper.
	PoolIdleReap()
}

// Pool maintains persistent, pipelined RPC connections keyed by
// address. The zero value is usable; fields must not change after the
// first Call. Pool.Call is a drop-in replacement for DialCallObs for
// idempotent exchanges: like Retry.Do it may deliver a request more
// than once when a connection breaks mid-call, so non-idempotent
// requests must keep their own one-shot path.
type Pool struct {
	// Size caps persistent connections per address (default
	// DefaultPoolSize). Calls beyond Size×address share connections via
	// pipelining rather than block.
	Size int
	// IdleTimeout reaps connections unused this long (default
	// DefaultIdleTimeout).
	IdleTimeout time.Duration
	// DialTimeout bounds each connection attempt (zero =
	// DefaultCallTimeout).
	DialTimeout time.Duration
	// Retry is the redial/backoff policy for broken connections; the
	// zero value means 3 attempts with jittered exponential backoff.
	Retry Retry
	// Obs receives per-call latency/error observations, exactly like
	// DialCallObs.
	Obs Observer
	// PoolObs receives pool lifecycle events.
	PoolObs PoolObserver
	// DialFunc overrides the dialer (tests wrap connections with the
	// chaos injector here); nil uses Dial.
	DialFunc func(addr string, timeout time.Duration) (net.Conn, error)
	// Codec selects the wire codec ceiling for pooled connections (see
	// ParseWireCodec): "" or "auto" negotiates the binary codec on each
	// fresh dial, "json" skips negotiation and keeps every frame JSON.
	// Unrecognized values behave like "auto".
	Codec string
	// Health, when set, gates every attempt through a per-address
	// circuit breaker and feeds it attempt outcomes. Nil disables
	// breaking entirely.
	Health HealthPolicy

	mu      sync.Mutex
	cond    *sync.Cond
	conns   map[string][]*poolConn
	dialing map[string]int // in-flight dials, reserved against Size
	closed  chan struct{}
	once    sync.Once
}

// init lazily prepares the pool's internal state.
func (p *Pool) init() {
	p.once.Do(func() {
		p.mu.Lock()
		if p.conns == nil {
			p.conns = map[string][]*poolConn{}
		}
		p.dialing = map[string]int{}
		p.cond = sync.NewCond(&p.mu)
		p.closed = make(chan struct{})
		p.mu.Unlock()
	})
}

func (p *Pool) size() int {
	if p.Size > 0 {
		return p.Size
	}
	return DefaultPoolSize
}

func (p *Pool) idleTimeout() time.Duration {
	if p.IdleTimeout > 0 {
		return p.IdleTimeout
	}
	return DefaultIdleTimeout
}

func (p *Pool) dial(addr string) (net.Conn, error) {
	if p.DialFunc != nil {
		return p.DialFunc(addr, Timeout(p.DialTimeout))
	}
	return Dial(addr, p.DialTimeout)
}

// maxCodec resolves the Codec field; unknown values fall back to auto
// (binaries validate the flag at startup, so this only covers tests
// poking the field directly).
func (p *Pool) maxCodec() uint8 {
	v, err := ParseWireCodec(p.Codec)
	if err != nil {
		return MaxCodecVersion
	}
	return v
}

// negotiate runs the codec hello on a fresh connection when the pool's
// ceiling allows more than JSON, bounded by the checkout's call
// timeout. The connection is not yet visible to other callers, so the
// synchronous exchange cannot interleave with pipelined frames.
func (p *Pool) negotiate(conn net.Conn, timeout time.Duration) (uint8, error) {
	if p.maxCodec() == CodecJSON {
		return CodecJSON, nil
	}
	ver, err := Negotiate(conn, timeout)
	if err != nil {
		return 0, err
	}
	if co, ok := p.PoolObs.(CodecObserver); ok {
		co.CodecNegotiated(int(ver))
	}
	return ver, nil
}

// Call performs one deadline-bounded request/response exchange over a
// pooled connection, observing the outcome like DialCallObs. Transport
// failures evict the broken connection and redial under the Retry
// policy; a *RemoteError aborts immediately (the peer answered and
// refused). Only idempotent calls belong here.
func (p *Pool) Call(addr string, timeout time.Duration, reqType string, req any, wantReply string, reply any) error {
	start := time.Now()
	err := p.call(addr, timeout, reqType, req, wantReply, reply)
	observe(p.Obs, reqType, start, err)
	return err
}

func (p *Pool) call(addr string, timeout time.Duration, reqType string, req any, wantReply string, reply any) error {
	p.init()
	r := p.Retry
	if r.Stop == nil {
		r.Stop = p.closed
	}
	attempts := r.attempts()
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if obs := p.PoolObs; obs != nil {
				obs.PoolRedial()
			}
			backoff := time.NewTimer(r.Delay(i - 1))
			select {
			case <-r.Stop:
				backoff.Stop()
				return err
			case <-backoff.C:
			}
		}
		if h := p.Health; h != nil && !h.Allow(addr) {
			// OPEN breaker: fail fast rather than redial into a peer
			// already known to be sick. If an earlier attempt produced a
			// concrete transport error, surface that instead.
			if err == nil {
				err = fmt.Errorf("%w: %s", ErrBreakerOpen, addr)
			}
			return err
		}
		attemptStart := time.Now()
		var pc *poolConn
		pc, err = p.checkout(addr, timeout)
		if err != nil {
			if errors.Is(err, ErrPoolClosed) {
				return err
			}
			p.recordHealth(addr, attemptStart, err)
			continue // dial failure: back off and redial
		}
		err = pc.call(timeout, reqType, req, wantReply, reply)
		pc.checkin()
		if err == nil {
			p.recordHealth(addr, attemptStart, nil)
			return nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			// Delivered and refused: the transport is healthy, so the
			// breaker sees a success.
			p.recordHealth(addr, attemptStart, nil)
			return err // retrying unchanged cannot succeed
		}
		// Transport trouble: pc has already been evicted by fail();
		// loop around for a fresh connection.
		p.recordHealth(addr, attemptStart, err)
	}
	return err
}

// recordHealth feeds one attempt's outcome to the breaker, if any.
func (p *Pool) recordHealth(addr string, start time.Time, err error) {
	if h := p.Health; h != nil {
		h.Record(addr, time.Since(start), err)
	}
}

// checkout hands the caller a connection to addr: an existing idle one,
// a fresh dial while under Size (in-flight dials count against the
// budget), or the least-loaded one to share. When the budget is spent
// entirely on dials still in flight, the caller waits for one to land
// rather than over-dialing.
func (p *Pool) checkout(addr string, timeout time.Duration) (*poolConn, error) {
	p.mu.Lock()
	for {
		select {
		case <-p.closed:
			p.mu.Unlock()
			return nil, ErrPoolClosed
		default:
		}
		var best *poolConn
		for _, pc := range p.conns[addr] {
			if best == nil || pc.inflight.Load() < best.inflight.Load() {
				best = pc
			}
		}
		budget := len(p.conns[addr]) + p.dialing[addr]
		if best != nil && (best.inflight.Load() == 0 || budget >= p.size()) {
			best.inflight.Add(1)
			p.mu.Unlock()
			p.observeCheckout()
			return best, nil
		}
		if budget < p.size() {
			p.dialing[addr]++
			break
		}
		// No established connection yet and every slot holds an
		// in-flight dial: wait for one to land or fail.
		p.cond.Wait()
	}
	p.mu.Unlock()

	// Dial (and negotiate the codec) outside the lock so a slow
	// handshake never blocks checkouts to other addresses.
	conn, err := p.dial(addr)
	var codec uint8
	if err == nil {
		if codec, err = p.negotiate(conn, timeout); err != nil {
			conn.Close()
		}
	}
	p.mu.Lock()
	p.dialing[addr]--
	if err != nil {
		p.cond.Broadcast()
		p.mu.Unlock()
		return nil, err
	}
	select {
	case <-p.closed:
		p.cond.Broadcast()
		p.mu.Unlock()
		conn.Close()
		return nil, ErrPoolClosed
	default:
	}
	pc := &poolConn{pool: p, addr: addr, conn: conn, codec: codec, pending: map[uint64]chan callResult{}}
	pc.inflight.Add(1)
	pc.lastUsed.Store(time.Now().UnixNano())
	p.conns[addr] = append(p.conns[addr], pc)
	p.cond.Broadcast()
	p.mu.Unlock()
	if obs := p.PoolObs; obs != nil {
		obs.PoolConnOpen(+1)
	}
	p.observeCheckout()
	pc.idleTimer = time.AfterFunc(p.idleTimeout(), pc.reapIfIdle)
	go pc.readLoop()
	return pc, nil
}

func (p *Pool) observeCheckout() {
	if obs := p.PoolObs; obs != nil {
		obs.PoolCheckout()
	}
}

// evict removes pc from the pool (no-op if already gone) and reports
// the close to the observer.
func (p *Pool) evict(pc *poolConn) {
	p.mu.Lock()
	conns := p.conns[pc.addr]
	for i, c := range conns {
		if c == pc {
			p.conns[pc.addr] = append(conns[:i], conns[i+1:]...)
			p.mu.Unlock()
			if obs := p.PoolObs; obs != nil {
				obs.PoolConnOpen(-1)
			}
			return
		}
	}
	p.mu.Unlock()
}

// OpenConns reports the number of live pooled connections (tests).
func (p *Pool) OpenConns() int {
	p.init()
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, conns := range p.conns {
		n += len(conns)
	}
	return n
}

// Close severs every pooled connection and fails future Calls with
// ErrPoolClosed. Safe to call more than once.
func (p *Pool) Close() {
	p.init()
	p.mu.Lock()
	select {
	case <-p.closed:
	default:
		close(p.closed)
	}
	p.cond.Broadcast()
	var all []*poolConn
	for _, conns := range p.conns {
		all = append(all, conns...)
	}
	p.conns = map[string][]*poolConn{}
	p.mu.Unlock()
	for _, pc := range all {
		if obs := p.PoolObs; obs != nil {
			obs.PoolConnOpen(-1)
		}
		pc.failLocal(ErrPoolClosed)
	}
}

// callResult is one demultiplexed reply (or the failure that ended the
// connection).
type callResult struct {
	f   Frame
	err error
}

// poolConn is one persistent connection with pipelined calls: writes
// are serialized under wmu, a single readLoop goroutine routes replies
// to waiters by frame ID.
type poolConn struct {
	pool  *Pool
	addr  string
	conn  net.Conn
	codec uint8 // negotiated at dial, immutable afterwards

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan callResult
	err     error // first failure; connection is dead once set

	inflight  atomic.Int64
	lastUsed  atomic.Int64 // UnixNano of the last checkin
	idleTimer *time.Timer
}

// readLoop routes reply frames to pending calls until the connection
// dies, then fails every waiter.
func (pc *poolConn) readLoop() {
	for {
		f, err := ReadFrame(pc.conn)
		if err != nil {
			pc.fail(fmt.Errorf("protocol: pooled read %s: %w", pc.addr, err))
			return
		}
		pc.mu.Lock()
		ch := pc.pending[f.ID]
		delete(pc.pending, f.ID)
		pc.mu.Unlock()
		if ch != nil {
			ch <- callResult{f: f}
		}
		// A reply whose waiter timed out is dropped on the floor.
	}
}

// fail marks the connection dead, evicts it from the pool, and delivers
// the error to every in-flight call — a partitioned or severed
// connection fails fast instead of wedging callers until their
// deadlines.
func (pc *poolConn) fail(err error) {
	pc.pool.evict(pc)
	pc.failLocal(err)
}

// failLocal is fail without the evict (Close already detached us).
func (pc *poolConn) failLocal(err error) {
	pc.mu.Lock()
	if pc.err == nil {
		pc.err = err
	}
	pending := pc.pending
	pc.pending = map[uint64]chan callResult{}
	pc.mu.Unlock()
	pc.conn.Close()
	if pc.idleTimer != nil {
		pc.idleTimer.Stop()
	}
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
}

// reapIfIdle closes the connection if it has sat unused for the idle
// timeout; otherwise it re-arms the timer for the remaining window.
func (pc *poolConn) reapIfIdle() {
	idle := pc.pool.idleTimeout()
	last := time.Unix(0, pc.lastUsed.Load())
	if pc.inflight.Load() == 0 && time.Since(last) >= idle {
		if obs := pc.pool.PoolObs; obs != nil {
			obs.PoolIdleReap()
		}
		pc.fail(fmt.Errorf("%w: idle reap", net.ErrClosed))
		return
	}
	// Re-arm for the remaining window, with a floor so a long in-flight
	// call (lastUsed far in the past, inflight > 0) re-checks at a
	// bounded cadence instead of spinning.
	d := idle - time.Since(last)
	if d < idle/4 {
		d = idle / 4
	}
	pc.idleTimer.Reset(d)
}

// checkin releases the caller's claim and refreshes the idle clock.
func (pc *poolConn) checkin() {
	pc.lastUsed.Store(time.Now().UnixNano())
	pc.inflight.Add(-1)
}

// call performs one pipelined exchange under an absolute deadline. The
// connection is shared, so the deadline is enforced with a timer and a
// per-call reply channel rather than SetDeadline; a call that times out
// kills the connection (a peer that stopped answering would poison
// every later call sharing it).
func (pc *poolConn) call(timeout time.Duration, reqType string, req any, wantReply string, reply any) error {
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		return fmt.Errorf("%w: %w", errConnBroken, err)
	}
	pc.nextID++
	id := pc.nextID
	ch := make(chan callResult, 1)
	pc.pending[id] = ch
	pc.mu.Unlock()

	pc.wmu.Lock()
	_ = pc.conn.SetWriteDeadline(time.Now().Add(Timeout(timeout)))
	err := writeFrameCodec(pc.conn, pc.codec, id, reqType, req)
	_ = pc.conn.SetWriteDeadline(time.Time{})
	pc.wmu.Unlock()
	if err != nil {
		pc.drop(id)
		pc.fail(err)
		return err
	}

	timer := time.NewTimer(Timeout(timeout))
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return res.err
		}
		if res.f.Type == TypeError {
			var e ErrorBody
			_ = Decode(res.f, TypeError, &e)
			return &RemoteError{Message: e.Message, Retryable: e.Retryable}
		}
		return Decode(res.f, wantReply, reply)
	case <-timer.C:
		pc.drop(id)
		err := fmt.Errorf("protocol: pooled call %s %s: deadline exceeded", pc.addr, reqType)
		pc.fail(err)
		return err
	}
}

// drop abandons a pending call registration.
func (pc *poolConn) drop(id uint64) {
	pc.mu.Lock()
	delete(pc.pending, id)
	pc.mu.Unlock()
}
