package protocol

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"faucets/internal/health"
)

func TestMarkOverloadedClassification(t *testing.T) {
	base := errors.New("central: auction shed")
	err := MarkOverloaded(base)
	if !IsOverloaded(err) {
		t.Fatal("MarkOverloaded not classified by IsOverloaded")
	}
	if !IsRetryable(err) {
		t.Fatal("OVERLOADED must always be retryable")
	}
	if !errors.Is(err, base) {
		t.Fatal("MarkOverloaded must wrap the cause")
	}
	if MarkOverloaded(nil) != nil {
		t.Fatal("MarkOverloaded(nil) must stay nil")
	}
	if IsOverloaded(errors.New("plain")) || IsOverloaded(nil) {
		t.Fatal("false positives")
	}
}

// The OVERLOADED classification must survive a trip through the wire's
// ErrorBody — the receiving side only sees a RemoteError.
func TestOverloadedSurvivesWire(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		f, err := ReadFrame(server)
		if err != nil || f.Type != TypePollReq {
			return
		}
		_ = WriteErrorFrom(server, MarkOverloaded(errors.New("central: shed")))
	}()
	var reply PollOK
	err := CallTimeout(client, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply)
	if err == nil {
		t.Fatal("expected remote error")
	}
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if !IsOverloaded(err) {
		t.Fatalf("overload classification lost over the wire: %v", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("retryable mark lost over the wire: %v", err)
	}
}

// An OPEN breaker must fail calls immediately — no dial, no timeout.
func TestPoolBreakerOpensAndFailsFast(t *testing.T) {
	// A listener that is closed right away: dials fail with refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	dials := atomic.Int64{}
	p := &Pool{
		Retry:  Retry{Attempts: 1},
		Health: health.NewSet(health.Options{Threshold: 2, Cooldown: time.Hour}),
		DialFunc: func(a string, timeout time.Duration) (net.Conn, error) {
			dials.Add(1)
			return Dial(a, timeout)
		},
	}
	defer p.Close()
	for i := 0; i < 2; i++ {
		var reply PollOK
		if err := p.Call(addr, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err == nil {
			t.Fatal("call to dead address succeeded")
		}
	}
	before := dials.Load()
	start := time.Now()
	var reply PollOK
	err = p.Call(addr, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("breaker-open refusal took %v, want instant", d)
	}
	if dials.Load() != before {
		t.Fatal("OPEN breaker still dialed")
	}
}

// Remote refusals prove the transport works: they must not trip the
// breaker.
func TestPoolBreakerRemoteErrorIsSuccess(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				rc := NewReplyConn(conn)
				for {
					f, err := ReadFrame(conn)
					if err != nil {
						return
					}
					rc.SetID(f.ID)
					_ = WriteError(rc, "refused")
				}
			}()
		}
	}()
	set := health.NewSet(health.Options{Threshold: 2, Cooldown: time.Hour})
	p := &Pool{Health: set, Codec: "json"}
	defer p.Close()
	addr := l.Addr().String()
	for i := 0; i < 10; i++ {
		var reply PollOK
		err := p.Call(addr, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply)
		var remote *RemoteError
		if !errors.As(err, &remote) {
			t.Fatalf("call %d: err = %v, want RemoteError", i, err)
		}
	}
	if got := set.State(addr); got != health.Closed {
		t.Fatalf("breaker state after refusals = %v, want closed", got)
	}
}

// After the cooldown a half-open probe goes through, and a healthy
// answer closes the breaker again.
func TestPoolBreakerHalfOpenRecovery(t *testing.T) {
	s := startPoolEcho(t)
	const addr = "virtual:1"
	sick := atomic.Bool{}
	sick.Store(true)
	set := health.NewSet(health.Options{Threshold: 2, Cooldown: 50 * time.Millisecond})
	p := &Pool{
		Retry:  Retry{Attempts: 1},
		Health: set,
		Codec:  "json",
		DialFunc: func(a string, timeout time.Duration) (net.Conn, error) {
			if sick.Load() {
				return nil, fmt.Errorf("injected dial failure to %s", a)
			}
			return Dial(s.addr(), timeout)
		},
	}
	defer p.Close()
	for i := 0; i < 2; i++ {
		var reply PollOK
		if err := p.Call(addr, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err == nil {
			t.Fatal("sick call succeeded")
		}
	}
	if got := set.State(addr); got != health.Open {
		t.Fatalf("state = %v, want open", got)
	}
	sick.Store(false)
	time.Sleep(80 * time.Millisecond)
	var reply PollOK
	if err := p.Call(addr, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if got := set.State(addr); got != health.Closed {
		t.Fatalf("state after good probe = %v, want closed", got)
	}
}

// trickleConn delivers reads to the peer one byte at a time: the wrap
// is on the client side here, simulating a server whose hello reply
// dribbles in. Negotiation must still finish within its deadline when
// the trickle is survivable, and fail cleanly when the peer stalls.
func TestNegotiateTrickledHello(t *testing.T) {
	s := startCodecEcho(t, CodecBinary)
	raw, err := Dial(s.addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := &trickleReadConn{Conn: raw, delay: 2 * time.Millisecond}
	ver, err := Negotiate(conn, 2*time.Second)
	if err != nil {
		t.Fatalf("negotiate over trickled conn: %v", err)
	}
	if ver != CodecBinary {
		t.Fatalf("negotiated %d, want binary", ver)
	}
}

// A stalled peer — connected but silent — must cost Negotiate at most
// its timeout, and the error must be a transport error (no silent JSON
// fallback: the conn is useless).
func TestNegotiateStalledPeerTimesOut(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			// Hold the connection open, never answer.
			defer conn.Close()
		}
	}()
	conn, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	_, err = Negotiate(conn, 100*time.Millisecond)
	if err == nil {
		t.Fatal("negotiate against stalled peer succeeded")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("stalled negotiate took %v, want ~100ms", d)
	}
}

// trickleReadConn delays between single-byte reads, so multi-byte
// frames arrive as a slow dribble.
type trickleReadConn struct {
	net.Conn
	delay time.Duration
}

func (c *trickleReadConn) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	time.Sleep(c.delay)
	return c.Conn.Read(p)
}
