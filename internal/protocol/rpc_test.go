package protocol

import (
	"errors"
	"net"
	"testing"
	"time"
)

// echoPeer answers every frame of type reqType with wantReply on the
// far end of a pipe, until the pipe closes.
func echoPeer(conn net.Conn, reqType, replyType string, body any) {
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if f.Type != reqType {
			_ = WriteError(conn, "unexpected "+f.Type)
			continue
		}
		_ = WriteFrame(conn, replyType, body)
	}
}

func TestCallTimeoutStalledReader(t *testing.T) {
	// The peer accepts the connection but never reads a byte: with
	// net.Pipe even the request write blocks, so only the deadline can
	// unstick the caller.
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	start := time.Now()
	var reply PollOK
	err := CallTimeout(client, 50*time.Millisecond, TypePollReq, PollReq{}, TypePollOK, &reply)
	if err == nil {
		t.Fatal("call against a stalled peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the call: %v", elapsed)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
}

func TestCallTimeoutSilentPeer(t *testing.T) {
	// The peer reads the request but never answers: the reply read must
	// hit the same deadline.
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		_, _ = ReadFrame(server) // swallow the request, never reply
	}()

	var reply PollOK
	err := CallTimeout(client, 50*time.Millisecond, TypePollReq, PollReq{}, TypePollOK, &reply)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
}

func TestCallTimeoutClearsDeadlineForReuse(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go echoPeer(server, TypePollReq, TypePollOK, PollOK{UsedPE: 3})

	for i := 0; i < 2; i++ {
		var reply PollOK
		if err := CallTimeout(client, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if reply.UsedPE != 3 {
			t.Fatalf("call %d: reply=%+v", i, reply)
		}
	}
	// The deadline must be cleared after the round trip: a read long
	// after the original deadline would otherwise fail instantly.
	time.Sleep(10 * time.Millisecond)
	var reply PollOK
	if err := CallTimeout(client, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
		t.Fatalf("reuse after deadline window: %v", err)
	}
}

func TestCallErrorFrameIsRemoteError(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		_, _ = ReadFrame(server)
		_ = WriteError(server, "no such job")
	}()

	var reply PollOK
	err := CallTimeout(client, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("want *RemoteError, got %T: %v", err, err)
	}
	if remote.Message != "no such job" {
		t.Fatalf("message=%q", remote.Message)
	}
}

func TestDialCallRoundTrip(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		echoPeer(conn, TypeWeatherReq, TypeWeatherOK, WeatherOK{Servers: 2})
	}()

	var reply WeatherOK
	if err := DialCall(l.Addr().String(), time.Second, TypeWeatherReq, WeatherReq{}, TypeWeatherOK, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Servers != 2 {
		t.Fatalf("reply=%+v", reply)
	}
	// A dead address fails within the dial timeout instead of hanging.
	if err := DialCall("127.0.0.1:1", 100*time.Millisecond, TypeWeatherReq, WeatherReq{}, TypeWeatherOK, &reply); err == nil {
		t.Fatal("dial against nothing succeeded")
	}
}

func TestTimeoutDefault(t *testing.T) {
	if Timeout(0) != DefaultCallTimeout {
		t.Fatalf("Timeout(0)=%v", Timeout(0))
	}
	if Timeout(time.Second) != time.Second {
		t.Fatalf("Timeout(1s)=%v", Timeout(time.Second))
	}
}

func TestRetryGivesUpAfterAttempts(t *testing.T) {
	calls := 0
	fail := errors.New("transport down")
	r := Retry{Attempts: 4, Base: time.Millisecond, Max: 2 * time.Millisecond}
	err := r.Do(func() error { calls++; return fail })
	if !errors.Is(err, fail) {
		t.Fatalf("err=%v", err)
	}
	if calls != 4 {
		t.Fatalf("calls=%d, want 4", calls)
	}
}

func TestRetrySucceedsMidway(t *testing.T) {
	calls := 0
	r := Retry{Attempts: 5, Base: time.Millisecond, Max: 2 * time.Millisecond}
	err := r.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryAbortsOnRemoteError(t *testing.T) {
	calls := 0
	r := Retry{Attempts: 5, Base: time.Millisecond, Max: 2 * time.Millisecond}
	err := r.Do(func() error {
		calls++
		return &RemoteError{Message: "authentication failed"}
	})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err=%v", err)
	}
	if calls != 1 {
		t.Fatalf("calls=%d: a refused request must not be retried", calls)
	}
}

func TestRetryStopAbortsWait(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	calls := 0
	// A long Base would make the test slow if Stop were ignored.
	r := Retry{Attempts: 3, Base: time.Minute, Max: time.Minute, Stop: stop}
	start := time.Now()
	err := r.Do(func() error { calls++; return errors.New("down") })
	if err == nil {
		t.Fatal("want the last error")
	}
	if calls != 1 {
		t.Fatalf("calls=%d, want 1 (stop fired before any retry)", calls)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("Stop did not abort the backoff wait")
	}
}

func TestRetryDelayBounded(t *testing.T) {
	r := Retry{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for n := 0; n < 64; n++ {
		for i := 0; i < 50; i++ {
			d := r.Delay(n)
			if d <= 0 || d > r.Max {
				t.Fatalf("Delay(%d)=%v, want (0, %v]", n, d, r.Max)
			}
		}
	}
	// Early attempts stay near the base, not the cap: jitter is at most
	// 1.5× the exponential value.
	for i := 0; i < 50; i++ {
		if d := r.Delay(0); d > 15*time.Millisecond {
			t.Fatalf("Delay(0)=%v, want ≤ 1.5×Base", d)
		}
	}
}

func TestRetryZeroValueDefaults(t *testing.T) {
	calls := 0
	var r Retry
	r.Base = time.Millisecond // keep the test fast; attempts stay default
	r.Max = 2 * time.Millisecond
	_ = r.Do(func() error { calls++; return errors.New("x") })
	if calls != 3 {
		t.Fatalf("calls=%d, want the default 3 attempts", calls)
	}
}
