package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"faucets/internal/bidding"
	"faucets/internal/machine"
	"faucets/internal/qos"
)

// This file implements codec version 1: a hand-rolled binary encoding
// for the hot auction-path message types (solicit/bid/commit/settle and
// the nested verify), negotiated per connection with a codec_hello
// exchange (see Negotiate / AnswerHello). JSON remains codec version 0,
// the universal fallback: every frame self-describes its codec by its
// first payload byte (JSON objects start '{', binary frames start
// binMagic), so a server needs no per-connection codec state to read a
// mixed stream, and message types without a binary encoding simply ride
// as JSON frames on a binary-negotiated connection.
//
// Binary frame layout, after the usual 4-byte big-endian length prefix:
//
//	[0]    binMagic (0xBF — never the first byte of frame JSON)
//	[1]    codec version (CodecBinary)
//	[2]    message type code (binCodeOf)
//	[3:11] frame ID, big-endian uint64
//	[11:]  body, fixed-order fields (see append*/read* pairs)
//
// Scalars are fixed-width big-endian: ints as two's-complement uint64,
// floats as IEEE-754 bits, bools one byte, strings and repeated groups
// length-prefixed with uint32 counts.

// Codec versions. The version is what hello negotiation agrees on: 0
// means frames are JSON, 1 adds the binary encoding for hot types.
const (
	CodecJSON   uint8 = 0
	CodecBinary uint8 = 1
	// MaxCodecVersion is the newest codec this build speaks.
	MaxCodecVersion = CodecBinary
)

// binMagic distinguishes binary payloads from JSON ones. JSON frame
// payloads always begin with '{' (0x7B); 0xBF is also an invalid first
// byte of any UTF-8 JSON document, so sniffing is unambiguous.
const binMagic = 0xBF

// binHeaderLen is the fixed binary header: magic, version, type code,
// and the 8-byte frame ID.
const binHeaderLen = 11

// Binary message type codes. Code 0 is deliberately unassigned so a
// zeroed buffer never parses as a valid frame.
const (
	binError       uint8 = 1
	binBidReq      uint8 = 2
	binBidOK       uint8 = 3
	binCommitReq   uint8 = 4
	binCommitOK    uint8 = 5
	binSubmitReq   uint8 = 6
	binSubmitOK    uint8 = 7
	binSettleReq   uint8 = 8
	binSettleOK    uint8 = 9
	binPollReq     uint8 = 10
	binPollOK      uint8 = 11
	binVerifyReq   uint8 = 12
	binVerifyOK    uint8 = 13
	binBidBatchReq      uint8 = 14
	binBidBatchOK       uint8 = 15
	binGossipReq        uint8 = 16
	binGossipOK         uint8 = 17
	binForwardSettleReq uint8 = 18
)

// binCodeOf maps frame type strings to binary codes; binTypeOf is the
// inverse. Types absent here are JSON-only and fall back transparently.
var binCodeOf = map[string]uint8{
	TypeError:       binError,
	TypeBidReq:      binBidReq,
	TypeBidOK:       binBidOK,
	TypeCommitReq:   binCommitReq,
	TypeCommitOK:    binCommitOK,
	TypeSubmitReq:   binSubmitReq,
	TypeSubmitOK:    binSubmitOK,
	TypeSettleReq:   binSettleReq,
	TypeSettleOK:    binSettleOK,
	TypePollReq:     binPollReq,
	TypePollOK:      binPollOK,
	TypeVerifyReq:   binVerifyReq,
	TypeVerifyOK:    binVerifyOK,
	TypeBidBatchReq:      binBidBatchReq,
	TypeBidBatchOK:       binBidBatchOK,
	TypeGossipReq:        binGossipReq,
	TypeGossipOK:         binGossipOK,
	TypeForwardSettleReq: binForwardSettleReq,
}

var binTypeOf = [19]string{
	binError:       TypeError,
	binBidReq:      TypeBidReq,
	binBidOK:       TypeBidOK,
	binCommitReq:   TypeCommitReq,
	binCommitOK:    TypeCommitOK,
	binSubmitReq:   TypeSubmitReq,
	binSubmitOK:    TypeSubmitOK,
	binSettleReq:   TypeSettleReq,
	binSettleOK:    TypeSettleOK,
	binPollReq:     TypePollReq,
	binPollOK:      TypePollOK,
	binVerifyReq:   TypeVerifyReq,
	binVerifyOK:    TypeVerifyOK,
	binBidBatchReq:      TypeBidBatchReq,
	binBidBatchOK:       TypeBidBatchOK,
	binGossipReq:        TypeGossipReq,
	binGossipOK:         TypeGossipOK,
	binForwardSettleReq: TypeForwardSettleReq,
}

// ErrBinaryFrame wraps every malformed-binary-payload failure so callers
// can distinguish codec corruption from JSON decode errors.
var ErrBinaryFrame = errors.New("protocol: malformed binary frame")

// --- append-style encoders -------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendI64(b []byte, v int) []byte { return appendU64(b, uint64(int64(v))) }

func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b []byte, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

func appendContract(b []byte, c *qos.Contract) []byte {
	if c == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendStr(b, c.App)
	b = appendI64(b, c.MinPE)
	b = appendI64(b, c.MaxPE)
	b = appendI64(b, c.MemPerPE)
	b = appendI64(b, c.TotalMem)
	b = appendF64(b, c.Work)
	b = appendF64(b, c.EffMin)
	b = appendF64(b, c.EffMax)
	b = appendF64(b, c.Payoff.Soft)
	b = appendF64(b, c.Payoff.Hard)
	b = appendF64(b, c.Payoff.AtSoft)
	b = appendF64(b, c.Payoff.AtHard)
	b = appendF64(b, c.Payoff.Penalty)
	b = appendF64(b, c.Deadline)
	b = appendU32(b, uint32(len(c.Phases)))
	for i := range c.Phases {
		ph := &c.Phases[i]
		b = appendStr(b, ph.Name)
		b = appendF64(b, ph.Work)
		b = appendI64(b, ph.MinPE)
		b = appendI64(b, ph.MaxPE)
		b = appendF64(b, ph.EffMin)
		b = appendF64(b, ph.EffMax)
	}
	return appendStr(b, c.Mechanism)
}

func appendBid(b []byte, bd *bidding.Bid) []byte {
	b = appendStr(b, bd.Server)
	b = appendF64(b, bd.Price)
	b = appendF64(b, bd.Multiplier)
	b = appendF64(b, bd.EstCompletion)
	b = appendF64(b, bd.ExpiresAt)
	return b
}

// appendBinaryBody appends typ's binary body encoding for body, or
// reports ok == false when the concrete body value has no binary
// encoder (the caller falls back to JSON for the whole frame).
func appendBinaryBody(dst []byte, body any) ([]byte, bool) {
	if body == nil {
		// No body at all (field-free requests like poll_req): the binary
		// empty body, same semantics as an omitted JSON body.
		return dst, true
	}
	switch m := body.(type) {
	case ErrorBody:
		return appendErrorBody(dst, &m), true
	case *ErrorBody:
		if m == nil {
			return dst, false
		}
		return appendErrorBody(dst, m), true
	case BidReq:
		return appendBidReq(dst, &m), true
	case *BidReq:
		if m == nil {
			return dst, false
		}
		return appendBidReq(dst, m), true
	case BidOK:
		return appendBid(dst, &m.Bid), true
	case *BidOK:
		if m == nil {
			return dst, false
		}
		return appendBid(dst, &m.Bid), true
	case CommitReq:
		return appendCommitReq(dst, &m), true
	case *CommitReq:
		if m == nil {
			return dst, false
		}
		return appendCommitReq(dst, m), true
	case CommitOK:
		return appendStr(dst, m.JobID), true
	case *CommitOK:
		if m == nil {
			return dst, false
		}
		return appendStr(dst, m.JobID), true
	case SubmitReq:
		return appendSubmitReq(dst, &m), true
	case *SubmitReq:
		if m == nil {
			return dst, false
		}
		return appendSubmitReq(dst, m), true
	case SubmitOK:
		return appendStr(dst, m.JobID), true
	case *SubmitOK:
		if m == nil {
			return dst, false
		}
		return appendStr(dst, m.JobID), true
	case SettleReq:
		return appendSettleReq(dst, &m), true
	case *SettleReq:
		if m == nil {
			return dst, false
		}
		return appendSettleReq(dst, m), true
	case SettleOK, *SettleOK, PollReq, *PollReq:
		return dst, true // no fields
	case PollOK:
		return appendPollOK(dst, &m), true
	case *PollOK:
		if m == nil {
			return dst, false
		}
		return appendPollOK(dst, m), true
	case VerifyReq:
		return appendVerifyReq(dst, &m), true
	case *VerifyReq:
		if m == nil {
			return dst, false
		}
		return appendVerifyReq(dst, m), true
	case VerifyOK:
		return appendStr(dst, m.User), true
	case *VerifyOK:
		if m == nil {
			return dst, false
		}
		return appendStr(dst, m.User), true
	case BidBatchReq:
		return appendBidBatchReq(dst, &m), true
	case *BidBatchReq:
		if m == nil {
			return dst, false
		}
		return appendBidBatchReq(dst, m), true
	case BidBatchOK:
		return appendBidBatchOK(dst, &m), true
	case *BidBatchOK:
		if m == nil {
			return dst, false
		}
		return appendBidBatchOK(dst, m), true
	case GossipReq:
		return appendGossipReq(dst, &m), true
	case *GossipReq:
		if m == nil {
			return dst, false
		}
		return appendGossipReq(dst, m), true
	case GossipOK, *GossipOK:
		return dst, true // no fields
	case ForwardSettleReq:
		return appendForwardSettleReq(dst, &m), true
	case *ForwardSettleReq:
		if m == nil {
			return dst, false
		}
		return appendForwardSettleReq(dst, m), true
	}
	return dst, false
}

func appendErrorBody(b []byte, m *ErrorBody) []byte {
	b = appendStr(b, m.Message)
	return appendBool(b, m.Retryable)
}

func appendBidReq(b []byte, m *BidReq) []byte {
	b = appendStr(b, m.User)
	b = appendStr(b, m.Token)
	return appendContract(b, m.Contract)
}

func appendCommitReq(b []byte, m *CommitReq) []byte {
	b = appendStr(b, m.User)
	b = appendStr(b, m.Token)
	b = appendStr(b, m.JobID)
	return appendBid(b, &m.Bid)
}

func appendSubmitReq(b []byte, m *SubmitReq) []byte {
	b = appendStr(b, m.User)
	b = appendStr(b, m.Token)
	b = appendStr(b, m.JobID)
	return appendContract(b, m.Contract)
}

func appendSettleReq(b []byte, m *SettleReq) []byte {
	b = appendStr(b, m.JobID)
	b = appendStr(b, m.User)
	b = appendStr(b, m.Server)
	b = appendStr(b, m.HomeCluster)
	b = appendStr(b, m.App)
	b = appendI64(b, m.MinPE)
	b = appendI64(b, m.MaxPE)
	b = appendF64(b, m.Price)
	return appendF64(b, m.CPUSeconds)
}

func appendPollOK(b []byte, m *PollOK) []byte {
	b = appendI64(b, m.UsedPE)
	b = appendI64(b, m.QueueLen)
	return appendI64(b, m.Running)
}

func appendVerifyReq(b []byte, m *VerifyReq) []byte {
	b = appendStr(b, m.User)
	return appendStr(b, m.Token)
}

func appendBidBatchReq(b []byte, m *BidBatchReq) []byte {
	b = appendStr(b, m.User)
	b = appendStr(b, m.Token)
	b = appendU32(b, uint32(len(m.Contracts)))
	for _, c := range m.Contracts {
		b = appendContract(b, c)
	}
	return b
}

func appendServerInfo(b []byte, si *ServerInfo) []byte {
	b = appendStr(b, si.Spec.Name)
	b = appendI64(b, si.Spec.NumPE)
	b = appendI64(b, si.Spec.MemPerPE)
	b = appendStr(b, si.Spec.CPUType)
	b = appendF64(b, si.Spec.Speed)
	b = appendF64(b, si.Spec.CostRate)
	b = appendStr(b, si.Addr)
	b = appendU32(b, uint32(len(si.Apps)))
	for _, app := range si.Apps {
		b = appendStr(b, app)
	}
	b = appendStr(b, si.Home)
	return appendI64(b, si.UsedPE)
}

func appendGossipReq(b []byte, m *GossipReq) []byte {
	b = appendStr(b, m.From)
	b = appendU64(b, m.Seq)
	b = appendU32(b, uint32(len(m.Servers)))
	for i := range m.Servers {
		b = appendServerInfo(b, &m.Servers[i])
	}
	b = appendI64(b, m.Weather.Servers)
	b = appendI64(b, m.Weather.TotalPE)
	b = appendI64(b, m.Weather.UsedPE)
	b = appendI64(b, m.Weather.Contracts)
	return appendF64(b, m.Weather.MeanMultiplier)
}

func appendForwardSettleReq(b []byte, m *ForwardSettleReq) []byte {
	b = appendStr(b, m.JobID)
	b = appendStr(b, m.User)
	b = appendStr(b, m.Server)
	b = appendStr(b, m.HomeCluster)
	b = appendStr(b, m.App)
	b = appendI64(b, m.MinPE)
	b = appendI64(b, m.MaxPE)
	b = appendF64(b, m.Price)
	return appendF64(b, m.CPUSeconds)
}

func appendBidBatchOK(b []byte, m *BidBatchOK) []byte {
	b = appendU32(b, uint32(len(m.Bids)))
	for i := range m.Bids {
		it := &m.Bids[i]
		b = appendBool(b, it.OK)
		b = appendBid(b, &it.Bid)
	}
	return b
}

// --- reader ----------------------------------------------------------

// breader consumes a binary body front to back. The first short read or
// bounds violation latches err; subsequent reads return zero values, so
// decoders read straight through and check err once.
type breader struct {
	b   []byte
	err error
}

func (r *breader) fail() {
	if r.err == nil {
		r.err = ErrBinaryFrame
	}
	r.b = nil
}

func (r *breader) take(n int) []byte {
	if len(r.b) < n {
		r.fail()
		return nil
	}
	p := r.b[:n]
	r.b = r.b[n:]
	return p
}

func (r *breader) u8() byte {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *breader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (r *breader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (r *breader) i64() int      { return int(int64(r.u64())) }
func (r *breader) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *breader) boolean() bool { return r.u8() != 0 }

func (r *breader) str() string {
	n := r.u32()
	if uint64(n) > uint64(len(r.b)) {
		r.fail()
		return ""
	}
	p := r.take(int(n))
	return string(p)
}

// count reads a repeated-group count, bounding it by the bytes left so a
// corrupt prefix cannot drive a huge slice allocation.
func (r *breader) count() int {
	n := r.u32()
	if uint64(n) > uint64(len(r.b)) {
		r.fail()
		return 0
	}
	return int(n)
}

func (r *breader) contract() *qos.Contract {
	if !r.boolean() {
		return nil
	}
	var c qos.Contract
	c.App = r.str()
	c.MinPE = r.i64()
	c.MaxPE = r.i64()
	c.MemPerPE = r.i64()
	c.TotalMem = r.i64()
	c.Work = r.f64()
	c.EffMin = r.f64()
	c.EffMax = r.f64()
	c.Payoff.Soft = r.f64()
	c.Payoff.Hard = r.f64()
	c.Payoff.AtSoft = r.f64()
	c.Payoff.AtHard = r.f64()
	c.Payoff.Penalty = r.f64()
	c.Deadline = r.f64()
	if n := r.count(); n > 0 {
		c.Phases = make([]qos.Phase, n)
		for i := range c.Phases {
			ph := &c.Phases[i]
			ph.Name = r.str()
			ph.Work = r.f64()
			ph.MinPE = r.i64()
			ph.MaxPE = r.i64()
			ph.EffMin = r.f64()
			ph.EffMax = r.f64()
		}
	}
	c.Mechanism = r.str()
	if r.err != nil {
		return nil
	}
	return &c
}

func (r *breader) serverInfo(si *ServerInfo) {
	si.Spec = machine.Spec{
		Name:     r.str(),
		NumPE:    r.i64(),
		MemPerPE: r.i64(),
		CPUType:  r.str(),
		Speed:    r.f64(),
		CostRate: r.f64(),
	}
	si.Addr = r.str()
	if n := r.count(); n > 0 {
		si.Apps = make([]string, n)
		for i := range si.Apps {
			si.Apps[i] = r.str()
		}
	}
	si.Home = r.str()
	si.UsedPE = r.i64()
}

func (r *breader) bid(b *bidding.Bid) {
	b.Server = r.str()
	b.Price = r.f64()
	b.Multiplier = r.f64()
	b.EstCompletion = r.f64()
	b.ExpiresAt = r.f64()
}

// done verifies the body was consumed exactly; trailing bytes mean a
// framing bug or corruption, not a forward-compatible extension (those
// get a new codec version).
func (r *breader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBinaryFrame, len(r.b))
	}
	return nil
}

// decodeBinaryBody decodes a binary body of type typ into v. The fast
// path hits the exact pointer type a caller passes; *any (used by fuzz
// and generic plumbing) receives the decoded value boxed.
func decodeBinaryBody(typ string, data []byte, v any) error {
	r := breader{b: data}
	switch typ {
	case TypeError:
		var m ErrorBody
		m.Message = r.str()
		m.Retryable = r.boolean()
		return storeBody(&r, typ, v, m)
	case TypeBidReq:
		var m BidReq
		m.User = r.str()
		m.Token = r.str()
		m.Contract = r.contract()
		return storeBody(&r, typ, v, m)
	case TypeBidOK:
		var m BidOK
		r.bid(&m.Bid)
		return storeBody(&r, typ, v, m)
	case TypeCommitReq:
		var m CommitReq
		m.User = r.str()
		m.Token = r.str()
		m.JobID = r.str()
		r.bid(&m.Bid)
		return storeBody(&r, typ, v, m)
	case TypeCommitOK:
		return storeBody(&r, typ, v, CommitOK{JobID: r.str()})
	case TypeSubmitReq:
		var m SubmitReq
		m.User = r.str()
		m.Token = r.str()
		m.JobID = r.str()
		m.Contract = r.contract()
		return storeBody(&r, typ, v, m)
	case TypeSubmitOK:
		return storeBody(&r, typ, v, SubmitOK{JobID: r.str()})
	case TypeSettleReq:
		var m SettleReq
		m.JobID = r.str()
		m.User = r.str()
		m.Server = r.str()
		m.HomeCluster = r.str()
		m.App = r.str()
		m.MinPE = r.i64()
		m.MaxPE = r.i64()
		m.Price = r.f64()
		m.CPUSeconds = r.f64()
		return storeBody(&r, typ, v, m)
	case TypeSettleOK:
		return storeBody(&r, typ, v, SettleOK{})
	case TypePollReq:
		return storeBody(&r, typ, v, PollReq{})
	case TypePollOK:
		var m PollOK
		m.UsedPE = r.i64()
		m.QueueLen = r.i64()
		m.Running = r.i64()
		return storeBody(&r, typ, v, m)
	case TypeVerifyReq:
		var m VerifyReq
		m.User = r.str()
		m.Token = r.str()
		return storeBody(&r, typ, v, m)
	case TypeVerifyOK:
		return storeBody(&r, typ, v, VerifyOK{User: r.str()})
	case TypeBidBatchReq:
		var m BidBatchReq
		m.User = r.str()
		m.Token = r.str()
		if n := r.count(); n > 0 {
			m.Contracts = make([]*qos.Contract, n)
			for i := range m.Contracts {
				m.Contracts[i] = r.contract()
			}
		}
		return storeBody(&r, typ, v, m)
	case TypeBidBatchOK:
		var m BidBatchOK
		if n := r.count(); n > 0 {
			m.Bids = make([]BidBatchItem, n)
			for i := range m.Bids {
				m.Bids[i].OK = r.boolean()
				r.bid(&m.Bids[i].Bid)
			}
		}
		return storeBody(&r, typ, v, m)
	case TypeGossipReq:
		var m GossipReq
		m.From = r.str()
		m.Seq = r.u64()
		if n := r.count(); n > 0 {
			m.Servers = make([]ServerInfo, n)
			for i := range m.Servers {
				r.serverInfo(&m.Servers[i])
			}
		}
		m.Weather.Servers = r.i64()
		m.Weather.TotalPE = r.i64()
		m.Weather.UsedPE = r.i64()
		m.Weather.Contracts = r.i64()
		m.Weather.MeanMultiplier = r.f64()
		return storeBody(&r, typ, v, m)
	case TypeGossipOK:
		return storeBody(&r, typ, v, GossipOK{})
	case TypeForwardSettleReq:
		var m ForwardSettleReq
		m.JobID = r.str()
		m.User = r.str()
		m.Server = r.str()
		m.HomeCluster = r.str()
		m.App = r.str()
		m.MinPE = r.i64()
		m.MaxPE = r.i64()
		m.Price = r.f64()
		m.CPUSeconds = r.f64()
		return storeBody(&r, typ, v, m)
	}
	return fmt.Errorf("%w: no binary decoder for type %q", ErrBinaryFrame, typ)
}

// storeBody finishes a decode: bounds check, then assign m into the
// caller's target.
func storeBody[T any](r *breader, typ string, v any, m T) error {
	if err := r.done(); err != nil {
		return fmt.Errorf("protocol: decode %s body: %w", typ, err)
	}
	switch t := v.(type) {
	case *T:
		*t = m
		return nil
	case *any:
		*t = m
		return nil
	}
	return fmt.Errorf("protocol: decode %s body: target %T does not match binary type", typ, v)
}
