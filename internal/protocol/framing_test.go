package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"faucets/internal/qos"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := AuthReq{User: "alice", Password: "secret"}
	if err := WriteFrame(&buf, TypeAuthReq, req); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got AuthReq
	if err := Decode(f, TypeAuthReq, &got); err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip: %+v != %+v", got, req)
	}
}

func TestFrameNilBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypePollReq, nil); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypePollReq {
		t.Fatalf("type=%q", f.Type)
	}
	if err := Decode(f, TypePollReq, nil); err != nil {
		t.Fatal(err)
	}
	var body PollReq
	if err := Decode(f, TypePollReq, &body); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWrongType(t *testing.T) {
	f := Frame{Type: TypeAuthOK}
	var v AuthReq
	if err := Decode(f, TypeAuthReq, &v); !errors.Is(err, ErrBadType) {
		t.Fatalf("err=%v", err)
	}
}

func TestReadFrameEOF(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty read err=%v, want io.EOF", err)
	}
	// Truncated header.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Truncated payload.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err=%v", err)
	}
}

func TestReadFrameGarbage(t *testing.T) {
	payload := []byte("{not json")
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("garbage payload accepted")
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteFrame(&buf, TypeTelemetry, Telemetry{JobID: "j", Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var tm Telemetry
		if err := Decode(f, TypeTelemetry, &tm); err != nil {
			t.Fatal(err)
		}
		if tm.Time != float64(i) {
			t.Fatalf("frame %d out of order: %v", i, tm.Time)
		}
	}
}

// rwBuf adapts two buffers into a ReadWriter (client writes to reqs,
// reads from resps).
type rwBuf struct {
	r *bytes.Buffer
	w *bytes.Buffer
}

func (b rwBuf) Read(p []byte) (int, error)  { return b.r.Read(p) }
func (b rwBuf) Write(p []byte) (int, error) { return b.w.Write(p) }

func TestCallRoundTrip(t *testing.T) {
	reqs, resps := &bytes.Buffer{}, &bytes.Buffer{}
	// Pre-load the "server" response.
	if err := WriteFrame(resps, TypeAuthOK, AuthOK{Token: "tok"}); err != nil {
		t.Fatal(err)
	}
	var reply AuthOK
	err := Call(rwBuf{r: resps, w: reqs}, TypeAuthReq, AuthReq{User: "u"}, TypeAuthOK, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Token != "tok" {
		t.Fatalf("reply=%+v", reply)
	}
	// The request must have been written.
	f, err := ReadFrame(reqs)
	if err != nil || f.Type != TypeAuthReq {
		t.Fatalf("request frame: %+v err=%v", f, err)
	}
}

func TestCallRemoteError(t *testing.T) {
	reqs, resps := &bytes.Buffer{}, &bytes.Buffer{}
	if err := WriteError(resps, "bad credentials"); err != nil {
		t.Fatal(err)
	}
	var reply AuthOK
	err := Call(rwBuf{r: resps, w: reqs}, TypeAuthReq, AuthReq{}, TypeAuthOK, &reply)
	if err == nil || !strings.Contains(err.Error(), "bad credentials") {
		t.Fatalf("err=%v", err)
	}
}

func TestCallUnexpectedReplyType(t *testing.T) {
	reqs, resps := &bytes.Buffer{}, &bytes.Buffer{}
	if err := WriteFrame(resps, TypePollOK, PollOK{}); err != nil {
		t.Fatal(err)
	}
	var reply AuthOK
	err := Call(rwBuf{r: resps, w: reqs}, TypeAuthReq, AuthReq{}, TypeAuthOK, &reply)
	if !errors.Is(err, ErrBadType) {
		t.Fatalf("err=%v", err)
	}
}

// Property: any telemetry message survives a frame round trip intact.
func TestTelemetryRoundTripProperty(t *testing.T) {
	f := func(id string, tm float64, pes int, out string) bool {
		in := Telemetry{JobID: id, Time: tm, PEs: pes, Output: out}
		var buf bytes.Buffer
		if WriteFrame(&buf, TypeTelemetry, in) != nil {
			return false
		}
		fr, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		var got Telemetry
		if Decode(fr, TypeTelemetry, &got) != nil {
			return false
		}
		return got == in
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestContractInBidReqRoundTrip(t *testing.T) {
	c := &qos.Contract{App: "namd", MinPE: 4, MaxPE: 64, Work: 3600,
		EffMin: 0.9, EffMax: 0.7,
		Payoff: qos.Payoff{Soft: 10, Hard: 20, AtSoft: 5, AtHard: 1, Penalty: 2}}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeBidReq, BidReq{User: "u", Contract: c}); err != nil {
		t.Fatal(err)
	}
	fr, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got BidReq
	if err := Decode(fr, TypeBidReq, &got); err != nil {
		t.Fatal(err)
	}
	if got.Contract.App != "namd" || got.Contract.Payoff != c.Payoff {
		t.Fatalf("contract mangled: %+v", got.Contract)
	}
}

func TestUploadBinaryData(t *testing.T) {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i % 251)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeUploadReq, UploadReq{JobID: "j", Name: "in.dat", Data: data, Last: true}); err != nil {
		t.Fatal(err)
	}
	fr, _ := ReadFrame(&buf)
	var got UploadReq
	if err := Decode(fr, TypeUploadReq, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, data) {
		t.Fatal("binary payload corrupted")
	}
}

func TestWriteFrameTooBig(t *testing.T) {
	big := UploadReq{Data: make([]byte, MaxFrame)}
	err := WriteFrame(io.Discard, TypeUploadReq, big)
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err=%v", err)
	}
}
