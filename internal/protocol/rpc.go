package protocol

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"
)

// This file is the robustness layer over the raw framing of framing.go:
// per-call deadlines so a hung peer cannot stall a caller forever, a
// dialer with a bounded connection attempt, and a jittered-backoff
// retry helper for idempotent calls. Every component that crosses the
// wire (FS poller, FD register/verify/settle, federation, client)
// routes its request/response exchanges through these helpers.

// DefaultCallTimeout bounds one RPC round trip (request write + reply
// read) when the caller does not configure a timeout of its own.
const DefaultCallTimeout = 5 * time.Second

// Observer receives the outcome of one RPC round trip: the request
// type, how long the exchange took (dial included for the DialCall
// path), and the error, nil on success. Implementations must be safe
// for concurrent use; telemetry.RPCMetrics is the standard one. A nil
// Observer is silently skipped, so call sites instrument
// unconditionally.
type Observer interface {
	ObserveRPC(reqType string, d time.Duration, err error)
}

// observe reports one finished exchange to obs, if any.
func observe(obs Observer, reqType string, start time.Time, err error) {
	if obs != nil {
		obs.ObserveRPC(reqType, time.Since(start), err)
	}
}

// CallTimeoutObs is CallTimeout with per-RPC latency/error observation.
func CallTimeoutObs(obs Observer, conn net.Conn, timeout time.Duration, reqType string, req any, wantReply string, reply any) error {
	start := time.Now()
	err := CallTimeout(conn, timeout, reqType, req, wantReply, reply)
	observe(obs, reqType, start, err)
	return err
}

// DialCallObs is DialCall with per-RPC latency/error observation; the
// measured duration covers the dial, the exchange, or the failure of
// either.
func DialCallObs(obs Observer, addr string, timeout time.Duration, reqType string, req any, wantReply string, reply any) error {
	start := time.Now()
	err := DialCall(addr, timeout, reqType, req, wantReply, reply)
	observe(obs, reqType, start, err)
	return err
}

// Timeout resolves a config field's "zero means default" convention.
func Timeout(d time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return DefaultCallTimeout
}

// RemoteError is a failure reported by the peer: the request was
// delivered and refused. Unless Retryable is set, retrying the request
// unchanged cannot succeed. Retryable marks refusals whose cause is
// transient on the peer's side — a durability (WAL) failure, say — so
// the same request may well succeed later and outbox-style senders
// should keep it queued. Transport failures (dial, deadline, broken
// pipe) are never RemoteErrors.
type RemoteError struct {
	Message   string
	Retryable bool
}

func (e *RemoteError) Error() string {
	if e.Message == "" {
		return "protocol: unspecified remote error"
	}
	return "protocol: remote error: " + e.Message
}

// retryableMark wraps a server-side error whose cause is transient, so
// the TypeError frame written for it (WriteErrorFrom) carries
// Retryable=true.
type retryableMark struct{ err error }

func (m *retryableMark) Error() string { return m.err.Error() }
func (m *retryableMark) Unwrap() error { return m.err }

// MarkRetryable marks err as transient: the refusal written onto the
// wire tells the caller the same request may succeed later. Nil stays
// nil.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableMark{err: err}
}

// IsRetryable reports whether err (or anything it wraps) carries the
// retryable mark or is itself a retryable RemoteError.
func IsRetryable(err error) bool {
	var m *retryableMark
	if errors.As(err, &m) {
		return true
	}
	var remote *RemoteError
	return errors.As(err, &remote) && remote.Retryable
}

// overloadedPrefix tags a shed request on the wire. The typed
// OVERLOADED refusal rides inside ErrorBody.Message rather than a new
// field so the binary codec's hand-rolled ErrorBody layout — and every
// already-deployed peer — stays byte-compatible: legacy callers simply
// see a retryable remote error, upgraded callers can classify it.
const overloadedPrefix = "OVERLOADED: "

// overloadedMark wraps a refusal caused by load shedding (admission
// control, deadline-unmeetable rejection). It prefixes the message so
// the classification survives the wire.
type overloadedMark struct{ err error }

func (m *overloadedMark) Error() string { return overloadedPrefix + m.err.Error() }
func (m *overloadedMark) Unwrap() error { return m.err }

// MarkOverloaded marks err as an overload shed: the refusal is typed
// OVERLOADED on the wire and is always retryable — the same request is
// expected to succeed once pressure drops. Nil stays nil.
func MarkOverloaded(err error) error {
	if err == nil {
		return nil
	}
	return MarkRetryable(&overloadedMark{err: err})
}

// IsOverloaded reports whether err is a shed-by-overload refusal,
// either locally marked (MarkOverloaded) or received over the wire as
// a RemoteError carrying the OVERLOADED prefix.
func IsOverloaded(err error) bool {
	var m *overloadedMark
	if errors.As(err, &m) {
		return true
	}
	var remote *RemoteError
	return errors.As(err, &remote) && strings.HasPrefix(remote.Message, overloadedPrefix)
}

// notOwnerPrefix tags a request that reached the wrong shard of a
// sharded Central Server mesh. Like OVERLOADED, the classification
// rides inside ErrorBody.Message — "NOT_OWNER <addr>: <cause>" — so the
// binary codec's ErrorBody layout and legacy peers stay
// byte-compatible. The embedded address is the owning shard, letting
// upgraded clients refresh their shard map and redirect.
const notOwnerPrefix = "NOT_OWNER "

// notOwnerMark wraps a refusal from a non-owning shard, carrying the
// owner's address for the redirect.
type notOwnerMark struct {
	err   error
	owner string
}

func (m *notOwnerMark) Error() string { return notOwnerPrefix + m.owner + ": " + m.err.Error() }
func (m *notOwnerMark) Unwrap() error { return m.err }

// MarkNotOwner marks err as a wrong-shard refusal redirecting to owner.
// Deliberately NOT retryable: resending the identical request to the
// same shard cannot succeed — the caller must redirect. Nil stays nil.
func MarkNotOwner(err error, owner string) error {
	if err == nil {
		return nil
	}
	return &notOwnerMark{err: err, owner: owner}
}

// NotOwnerAddr extracts the owning shard's address from a wrong-shard
// refusal, locally marked or received over the wire. ok is false when
// err is not a NOT_OWNER refusal.
func NotOwnerAddr(err error) (owner string, ok bool) {
	var m *notOwnerMark
	if errors.As(err, &m) {
		return m.owner, true
	}
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.HasPrefix(remote.Message, notOwnerPrefix) {
		return "", false
	}
	rest := remote.Message[len(notOwnerPrefix):]
	i := strings.Index(rest, ": ")
	if i <= 0 {
		return "", false
	}
	return rest[:i], true
}

// Dial connects to addr within timeout (zero = DefaultCallTimeout).
func Dial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, Timeout(timeout))
}

// CallTimeout performs Call under an absolute deadline covering both
// the request write and the reply read, then clears the deadline so the
// connection can be reused. A peer that accepts the connection but
// never answers costs the caller at most timeout.
func CallTimeout(conn net.Conn, timeout time.Duration, reqType string, req any, wantReply string, reply any) error {
	if err := conn.SetDeadline(time.Now().Add(Timeout(timeout))); err != nil {
		return fmt.Errorf("protocol: set deadline: %w", err)
	}
	defer conn.SetDeadline(time.Time{})
	return Call(conn, reqType, req, wantReply, reply)
}

// WriteFrameTimeout bounds a single frame write — used on long-lived
// streams (telemetry) where only the send should be deadline-guarded.
func WriteFrameTimeout(conn net.Conn, timeout time.Duration, typ string, body any) error {
	if err := conn.SetWriteDeadline(time.Now().Add(Timeout(timeout))); err != nil {
		return fmt.Errorf("protocol: set write deadline: %w", err)
	}
	defer conn.SetWriteDeadline(time.Time{})
	return WriteFrame(conn, typ, body)
}

// DialCall is the one-shot exchange most components need: dial, one
// deadline-bounded round trip, close.
func DialCall(addr string, timeout time.Duration, reqType string, req any, wantReply string, reply any) error {
	conn, err := Dial(addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	return CallTimeout(conn, timeout, reqType, req, wantReply, reply)
}

// Retry runs an idempotent operation with jittered exponential backoff.
// The zero value is usable: 3 attempts, 50ms base, 2s cap.
type Retry struct {
	// Attempts is the total number of tries (default 3).
	Attempts int
	// Base is the backoff before the second attempt (default 50ms).
	Base time.Duration
	// Max caps the backoff between attempts (default 2s).
	Max time.Duration
	// Stop aborts the wait between attempts when closed (optional).
	Stop <-chan struct{}
}

func (r Retry) attempts() int {
	if r.Attempts > 0 {
		return r.Attempts
	}
	return 3
}

// Delay returns the jittered backoff after failed attempt n (0-based):
// exponential growth from Base, multiplied by a random factor in
// [0.5, 1.5), and never above Max.
func (r Retry) Delay(n int) time.Duration {
	base := r.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := r.Max
	if max <= 0 {
		max = 2 * time.Second
	}
	d := max
	// The shift overflows past ~30 doublings; by then we are at the cap
	// anyway.
	if n < 30 {
		if grown := base << uint(n); grown > 0 && grown < max {
			d = grown
		}
	}
	d = time.Duration(float64(d) * (0.5 + rand.Float64()))
	if d > max {
		d = max
	}
	return d
}

// Do runs f until it succeeds, attempts are exhausted, or Stop closes,
// and returns the last error. A *RemoteError aborts immediately: the
// peer received the request and refused it, so an unchanged retry
// cannot succeed. Only use Do for idempotent calls.
func (r Retry) Do(f func() error) error {
	var err error
	attempts := r.attempts()
	for i := 0; i < attempts; i++ {
		if err = f(); err == nil {
			return nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			return err
		}
		if i == attempts-1 {
			break
		}
		// time.NewTimer rather than time.After: a stopped timer frees
		// immediately instead of leaking until it fires.
		backoff := time.NewTimer(r.Delay(i))
		select {
		case <-r.Stop:
			backoff.Stop()
			return err
		case <-backoff.C:
		}
	}
	return err
}
