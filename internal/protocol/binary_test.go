package protocol

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"faucets/internal/bidding"
	"faucets/internal/machine"
	"faucets/internal/qos"
)

// benchContract builds a fully-populated contract so encoder tests cover
// every field, including payoff and phases.
func testContract() *qos.Contract {
	return &qos.Contract{
		App: "jacobi", MinPE: 4, MaxPE: 64, MemPerPE: 512, TotalMem: 8192,
		Work: 1200.5, EffMin: 0.4, EffMax: 0.95,
		Payoff:   qos.Payoff{Soft: 100, Hard: 40, AtSoft: 600, AtHard: 1200, Penalty: 10},
		Deadline: 1800,
		Phases: []qos.Phase{
			{Name: "setup", Work: 10, MinPE: 1, MaxPE: 4, EffMin: 0.9, EffMax: 1},
			{Name: "solve", Work: 1190.5, MinPE: 4, MaxPE: 64, EffMin: 0.4, EffMax: 0.95},
		},
	}
}

func testBid() bidding.Bid {
	return bidding.Bid{Server: "lemieux", Price: 12.75, Multiplier: 1.25, EstCompletion: 900.25, ExpiresAt: 42}
}

// TestBinaryRoundTripAllTypes encodes every hot type at the binary codec
// ceiling, reads the frame back, and requires a field-exact decode.
func TestBinaryRoundTripAllTypes(t *testing.T) {
	cases := []struct {
		typ  string
		body any
		got  func() any // fresh decode target
	}{
		{TypeError, ErrorBody{Message: "nope", Retryable: true}, func() any { return &ErrorBody{} }},
		{TypeBidReq, BidReq{User: "u", Token: "tok", Contract: testContract()}, func() any { return &BidReq{} }},
		{TypeBidOK, BidOK{Bid: testBid()}, func() any { return &BidOK{} }},
		{TypeCommitReq, CommitReq{User: "u", Token: "tok", JobID: "job-1", Bid: testBid()}, func() any { return &CommitReq{} }},
		{TypeCommitOK, CommitOK{JobID: "job-1"}, func() any { return &CommitOK{} }},
		{TypeSubmitReq, SubmitReq{User: "u", Token: "tok", JobID: "job-1", Contract: testContract()}, func() any { return &SubmitReq{} }},
		{TypeSubmitOK, SubmitOK{JobID: "job-1"}, func() any { return &SubmitOK{} }},
		{TypeSettleReq, SettleReq{JobID: "job-1", User: "u", Server: "s", HomeCluster: "h", App: "a", MinPE: 2, MaxPE: 8, Price: 3.5, CPUSeconds: 77}, func() any { return &SettleReq{} }},
		{TypePollOK, PollOK{UsedPE: 12, QueueLen: 3, Running: 4}, func() any { return &PollOK{} }},
		{TypeVerifyReq, VerifyReq{User: "u", Token: "tok"}, func() any { return &VerifyReq{} }},
		{TypeVerifyOK, VerifyOK{User: "u"}, func() any { return &VerifyOK{} }},
		{TypeBidBatchReq, BidBatchReq{User: "u", Token: "tok", Contracts: []*qos.Contract{testContract(), nil, {App: "x", MinPE: 1, MaxPE: 1, Work: 1}}}, func() any { return &BidBatchReq{} }},
		{TypeBidBatchOK, BidBatchOK{Bids: []BidBatchItem{{OK: true, Bid: testBid()}, {OK: false}}}, func() any { return &BidBatchOK{} }},
		{TypeGossipReq, GossipReq{
			From: "10.0.0.1:9000", Seq: 42,
			Servers: []ServerInfo{
				{Spec: machine.Spec{Name: "lemieux", NumPE: 64, MemPerPE: 512, CPUType: "x86", Speed: 1.5, CostRate: 0.02}, Addr: "10.0.0.2:7000", Apps: []string{"jacobi", "md"}, Home: "psc", UsedPE: 12},
				{Spec: machine.Spec{Name: "tack", NumPE: 8}, Addr: "10.0.0.3:7000"},
			},
			Weather: WeatherDigest{Servers: 2, TotalPE: 72, UsedPE: 12, Contracts: 7, MeanMultiplier: 1.3},
		}, func() any { return &GossipReq{} }},
		{TypeForwardSettleReq, ForwardSettleReq{JobID: "job-2", User: "u", Server: "s", HomeCluster: "h", App: "a", MinPE: 2, MaxPE: 8, Price: 3.5, CPUSeconds: 77}, func() any { return &ForwardSettleReq{} }},
	}
	for _, tc := range cases {
		buf, err := AppendFrame(nil, CodecBinary, 7, tc.typ, tc.body)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.typ, err)
		}
		f, err := ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%s: read: %v", tc.typ, err)
		}
		if f.Codec() != CodecBinary {
			t.Fatalf("%s: arrived as codec %d, want binary", tc.typ, f.Codec())
		}
		if f.ID != 7 || f.Type != tc.typ {
			t.Fatalf("%s: header mismatch: id=%d type=%q", tc.typ, f.ID, f.Type)
		}
		got := tc.got()
		if err := Decode(f, tc.typ, got); err != nil {
			t.Fatalf("%s: decode: %v", tc.typ, err)
		}
		want := reflect.ValueOf(tc.body)
		if !reflect.DeepEqual(reflect.ValueOf(got).Elem().Interface(), want.Interface()) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", tc.typ, reflect.ValueOf(got).Elem().Interface(), tc.body)
		}
	}
}

// TestBinaryFieldFreeTypesRoundTrip covers the zero-field hot types,
// whose binary bodies are empty on purpose.
func TestBinaryFieldFreeTypesRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		typ  string
		body any
	}{
		{TypeSettleOK, SettleOK{}},
		{TypePollReq, PollReq{}},
		{TypeGossipOK, GossipOK{}},
	} {
		buf, err := AppendFrame(nil, CodecBinary, 3, tc.typ, tc.body)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.typ, err)
		}
		f, err := ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%s: read: %v", tc.typ, err)
		}
		if f.Codec() != CodecBinary || len(f.Body) != 0 {
			t.Fatalf("%s: codec=%d body=%d bytes, want binary empty body", tc.typ, f.Codec(), len(f.Body))
		}
		if err := Decode(f, tc.typ, &struct{}{}); err != nil {
			t.Fatalf("%s: decode: %v", tc.typ, err)
		}
	}
}

// TestBinaryCodecFallsBackToJSONForColdTypes: a binary-negotiated
// connection still carries types without a binary encoding as JSON
// frames, readable by anyone.
func TestBinaryCodecFallsBackToJSONForColdTypes(t *testing.T) {
	buf, err := AppendFrame(nil, CodecBinary, 9, TypeAuthReq, AuthReq{User: "u", Password: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if buf[4] != '{' {
		t.Fatalf("cold type should ride as JSON, payload starts 0x%02x", buf[4])
	}
	f, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var got AuthReq
	if err := Decode(f, TypeAuthReq, &got); err != nil {
		t.Fatal(err)
	}
	if got.User != "u" || got.Password != "p" {
		t.Fatalf("fallback round trip mismatch: %+v", got)
	}
}

// TestBinaryRejectsCorruption: truncated bodies, trailing bytes, unknown
// type codes and versions must error, never panic or fabricate data.
func TestBinaryRejectsCorruption(t *testing.T) {
	good, err := AppendFrame(nil, CodecBinary, 1, TypeBidReq, BidReq{User: "u", Token: "t", Contract: testContract()})
	if err != nil {
		t.Fatal(err)
	}

	// Truncated body: shorten payload, fix the length prefix.
	trunc := append([]byte(nil), good[:len(good)-5]...)
	trunc[0], trunc[1], trunc[2], trunc[3] = 0, 0, byte((len(trunc)-4)>>8), byte(len(trunc)-4)
	if f, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		var m BidReq
		if err := Decode(f, TypeBidReq, &m); !errors.Is(err, ErrBinaryFrame) {
			t.Fatalf("truncated body decoded: err=%v m=%+v", err, m)
		}
	}

	// Trailing bytes after a valid body.
	trail := append(append([]byte(nil), good...), 0xAA, 0xBB)
	trail[2], trail[3] = byte((len(trail)-4)>>8), byte(len(trail)-4)
	f, err := ReadFrame(bytes.NewReader(trail))
	if err != nil {
		t.Fatalf("read with trailing bytes: %v", err)
	}
	var m BidReq
	if err := Decode(f, TypeBidReq, &m); !errors.Is(err, ErrBinaryFrame) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}

	// Unknown type code.
	bad := append([]byte(nil), good...)
	bad[6] = 0xEE
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBinaryFrame) {
		t.Fatalf("unknown type code accepted: %v", err)
	}

	// Unsupported codec version.
	bad = append([]byte(nil), good...)
	bad[5] = 99
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBinaryFrame) {
		t.Fatalf("future codec version accepted: %v", err)
	}
}

// TestDecodeEmptyBodyTable sweeps every frame type: the field-free ones
// must accept an absent body, every field-bearing type must refuse it
// with ErrEmptyBody instead of handing back a zero-valued struct.
func TestDecodeEmptyBodyTable(t *testing.T) {
	all := []string{
		TypeError,
		TypeAuthReq, TypeAuthOK, TypeListServersReq, TypeListServersOK,
		TypeListAppsReq, TypeListAppsOK, TypeCreditsReq, TypeCreditsOK,
		TypeRegisterReq, TypeRegisterOK, TypePollReq, TypePollOK,
		TypeVerifyReq, TypeVerifyOK, TypeSettleReq, TypeSettleOK,
		TypeWeatherReq, TypeWeatherOK, TypePeerListReq, TypePeerVerifyReq,
		TypeHistoryReq, TypeHistoryOK,
		TypeBidReq, TypeBidOK, TypeBidBatchReq, TypeBidBatchOK,
		TypeCommitReq, TypeCommitOK, TypeSubmitReq, TypeSubmitOK,
		TypeUploadReq, TypeUploadOK, TypeStatusReq, TypeStatusOK,
		TypeOutputReq, TypeOutputOK, TypeKillReq, TypeKillOK,
		TypeASRegisterReq, TypeASRegisterOK, TypeTelemetry,
		TypeWatchReq, TypeWatchOK, TypeWatchEnd,
		TypeCodecHello, TypeCodecOK,
		TypeGossipReq, TypeGossipOK, TypeForwardSettleReq,
	}
	fieldFree := map[string]bool{
		TypeError:        true,
		TypeRegisterOK:   true,
		TypePollReq:      true,
		TypeSettleOK:     true,
		TypeWeatherReq:   true,
		TypeASRegisterOK: true,
		TypeWatchEnd:     true,
		TypeGossipOK:     true,
	}
	for _, typ := range all {
		f := Frame{Type: typ}
		var v any
		err := Decode(f, typ, &v)
		if fieldFree[typ] {
			if err != nil {
				t.Errorf("%s: field-free type rejected empty body: %v", typ, err)
			}
		} else if !errors.Is(err, ErrEmptyBody) {
			t.Errorf("%s: empty body accepted (err=%v), want ErrEmptyBody", typ, err)
		}
	}
}

// TestCallRejectsMismatchedReplyID: a stale reply stamped with a
// different request's ID must fail the call with IDMismatchError, not
// decode as this call's answer.
func TestCallRejectsMismatchedReplyID(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		f, err := ReadFrame(srv)
		if err != nil {
			return
		}
		// Echo a wrong, non-zero ID — a leftover answer to an earlier call.
		_ = writeFrameID(srv, f.ID+1000, TypePollOK, PollOK{UsedPE: 1})
	}()
	var reply PollOK
	err := Call(cli, TypePollReq, nil, TypePollOK, &reply)
	var mismatch *IDMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("stale reply accepted: err=%v reply=%+v", err, reply)
	}
	if mismatch.Got != mismatch.Want+1000 {
		t.Fatalf("mismatch detail wrong: %+v", mismatch)
	}
}

// TestCallToleratesZeroReplyID keeps back-compat with peers predating ID
// echo: their replies carry no ID and must still be accepted.
func TestCallToleratesZeroReplyID(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		if _, err := ReadFrame(srv); err != nil {
			return
		}
		_ = writeFrameID(srv, 0, TypePollOK, PollOK{UsedPE: 5})
	}()
	var reply PollOK
	if err := Call(cli, TypePollReq, nil, TypePollOK, &reply); err != nil {
		t.Fatalf("zero-ID reply rejected: %v", err)
	}
	if reply.UsedPE != 5 {
		t.Fatalf("reply body lost: %+v", reply)
	}
}

// TestFrameArrivesAsSingleWrite pins the single-write framing property:
// header and payload must leave in one Write call, so concurrent
// writers not sharing a mutex can never interleave a frame. net.Pipe is
// unbuffered and delivers exactly one Write per Read, which makes a
// split write observable: the first Read would return only the first
// segment.
func TestFrameArrivesAsSingleWrite(t *testing.T) {
	for _, codec := range []uint8{CodecJSON, CodecBinary} {
		cli, srv := net.Pipe()
		errc := make(chan error, 1)
		go func() {
			errc <- writeFrameCodec(cli, codec, 42, TypeBidOK, BidOK{Bid: testBid()})
		}()
		buf := make([]byte, 64<<10)
		srv.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := srv.Read(buf)
		if err != nil {
			t.Fatalf("codec %d: read: %v", codec, err)
		}
		if werr := <-errc; werr != nil {
			t.Fatalf("codec %d: write: %v", codec, werr)
		}
		// The one Read must hold the complete frame: 4-byte length prefix
		// plus exactly the advertised payload.
		if n < 4 {
			t.Fatalf("codec %d: first write carried %d bytes, not even a header", codec, n)
		}
		want := 4 + int(uint32(buf[0])<<24|uint32(buf[1])<<16|uint32(buf[2])<<8|uint32(buf[3]))
		if n != want {
			t.Fatalf("codec %d: frame split across writes: first write %d bytes, frame is %d", codec, n, want)
		}
		f, err := ReadFrame(bytes.NewReader(buf[:n]))
		if err != nil {
			t.Fatalf("codec %d: parse: %v", codec, err)
		}
		if f.ID != 42 || f.Type != TypeBidOK {
			t.Fatalf("codec %d: frame header mismatch: %+v", codec, f)
		}
		cli.Close()
		srv.Close()
	}
}

// TestFrameReaderReusesBuffer: consecutive small frames must not
// reallocate the payload buffer, and binary/JSON frames may interleave
// on one stream.
func TestFrameReaderReusesBuffer(t *testing.T) {
	var wire bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := writeFrameCodec(&wire, CodecBinary, uint64(i+1), TypeVerifyReq, VerifyReq{User: "u", Token: "t"}); err != nil {
			t.Fatal(err)
		}
		if err := writeFrameCodec(&wire, CodecJSON, uint64(i+100), TypeVerifyReq, VerifyReq{User: "u", Token: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&wire)
	for i := 0; i < 6; i++ {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var m VerifyReq
		if err := Decode(f, TypeVerifyReq, &m); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.User != "u" || m.Token != "t" {
			t.Fatalf("frame %d: body mismatch: %+v", i, m)
		}
	}
	if _, err := fr.Next(); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}
