package protocol

import (
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// codecEchoServer answers codec_hello up to maxVersion and PollReq with
// PollOK, echoing each request's codec — the shape every real component
// shares. It records the codec of the last poll request it served.
type codecEchoServer struct {
	l          net.Listener
	maxVersion uint8
	lastCodec  atomic.Int32
	binFrames  atomic.Int64
	jsonFrames atomic.Int64
}

func startCodecEcho(t *testing.T, maxVersion uint8) *codecEchoServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s := &codecEchoServer{l: l, maxVersion: maxVersion}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				rc := NewReplyConn(conn)
				fr := NewFrameReader(conn)
				for {
					f, err := fr.Next()
					if err != nil {
						return
					}
					rc.SetEcho(f)
					switch f.Type {
					case TypeCodecHello:
						_ = AnswerHello(rc, f, s.maxVersion)
					case TypePollReq:
						s.lastCodec.Store(int32(f.Codec()))
						if f.Codec() == CodecBinary {
							s.binFrames.Add(1)
						} else {
							s.jsonFrames.Add(1)
						}
						_ = WriteFrame(rc, TypePollOK, PollOK{UsedPE: 7})
					default:
						_ = WriteError(rc, "unexpected "+f.Type)
					}
				}
			}()
		}
	}()
	return s
}

func (s *codecEchoServer) addr() string { return s.l.Addr().String() }

// codecCountObs records negotiated codec versions.
type codecCountObs struct {
	countingPoolObs
	negotiated [2]atomic.Int64
}

func (o *codecCountObs) CodecNegotiated(version int) {
	if version >= 0 && version < len(o.negotiated) {
		o.negotiated[version].Add(1)
	}
}

// TestNegotiationMatrix runs the interop matrix over real sockets (run
// under -race in CI): a binary-capable pool against a binary server, the
// same pool against a JSON-only peer, and a JSON-pinned pool against a
// binary-capable server. Every pairing must complete calls, and the
// request codec the server observes must match the negotiated floor.
func TestNegotiationMatrix(t *testing.T) {
	cases := []struct {
		name       string
		poolCodec  string
		serverMax  uint8
		wantOnWire uint8
	}{
		{"binary-to-binary", "binary", MaxCodecVersion, CodecBinary},
		{"binary-to-json-only", "binary", CodecJSON, CodecJSON},
		{"json-pinned-to-binary", "json", MaxCodecVersion, CodecJSON},
		{"auto-to-binary", "", MaxCodecVersion, CodecBinary},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := startCodecEcho(t, tc.serverMax)
			obs := &codecCountObs{}
			p := &Pool{Codec: tc.poolCodec, PoolObs: obs}
			defer p.Close()
			for i := 0; i < 4; i++ {
				var reply PollOK
				if err := p.Call(s.addr(), 2*time.Second, TypePollReq, nil, TypePollOK, &reply); err != nil {
					t.Fatalf("call %d: %v", i, err)
				}
				if reply.UsedPE != 7 {
					t.Fatalf("call %d: reply body lost: %+v", i, reply)
				}
			}
			if got := uint8(s.lastCodec.Load()); got != tc.wantOnWire {
				t.Fatalf("server saw codec %d, want %d", got, tc.wantOnWire)
			}
			if tc.poolCodec != "json" {
				if obs.negotiated[tc.wantOnWire].Load() == 0 {
					t.Fatalf("CodecNegotiated(%d) never observed", tc.wantOnWire)
				}
			}
		})
	}
}

// TestNegotiationLegacyPeerFallsBackToJSON: a peer predating the hello
// exchange answers codec_hello with a TypeError frame; the pool must
// fall back to JSON and keep working rather than failing the dial.
func TestNegotiationLegacyPeerFallsBackToJSON(t *testing.T) {
	s := startPoolEcho(t) // answers anything but poll_req with an error frame
	p := &Pool{Codec: "binary"}
	defer p.Close()
	for i := 0; i < 3; i++ {
		var reply PollOK
		if err := p.Call(s.addr(), 2*time.Second, TypePollReq, nil, TypePollOK, &reply); err != nil {
			t.Fatalf("call %d against legacy peer: %v", i, err)
		}
	}
	if got := s.accepts.Load(); got != 1 {
		t.Fatalf("fallback should keep the pooled connection: %d accepts", got)
	}
}

// TestNegotiationMixedVersionsAfterRestart models a rolling downgrade:
// the pool negotiates binary with a server, the server restarts on the
// same address as JSON-only, and the pool's redial must renegotiate down
// to JSON instead of assuming the old connection's codec.
func TestNegotiationMixedVersionsAfterRestart(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	serve := func(maxVersion uint8) (*codecEchoServer, func()) {
		var ln net.Listener
		deadline := time.Now().Add(2 * time.Second)
		for {
			ln, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("relisten %s: %v", addr, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
		s := &codecEchoServer{l: ln, maxVersion: maxVersion}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					defer conn.Close()
					rc := NewReplyConn(conn)
					fr := NewFrameReader(conn)
					for {
						f, err := fr.Next()
						if err != nil {
							return
						}
						rc.SetEcho(f)
						switch f.Type {
						case TypeCodecHello:
							_ = AnswerHello(rc, f, s.maxVersion)
						case TypePollReq:
							s.lastCodec.Store(int32(f.Codec()))
							_ = WriteFrame(rc, TypePollOK, PollOK{})
						}
					}
				}()
			}
		}()
		return s, func() { ln.Close(); <-done }
	}

	p := &Pool{Codec: "binary", Retry: Retry{Attempts: 5, Base: 10 * time.Millisecond, Max: 100 * time.Millisecond}}
	defer p.Close()

	s1, stop1 := serve(MaxCodecVersion)
	var reply PollOK
	if err := p.Call(addr, 2*time.Second, TypePollReq, nil, TypePollOK, &reply); err != nil {
		t.Fatalf("binary generation: %v", err)
	}
	if got := uint8(s1.lastCodec.Load()); got != CodecBinary {
		t.Fatalf("first generation saw codec %d, want binary", got)
	}
	stop1()

	s2, stop2 := serve(CodecJSON)
	defer stop2()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := p.Call(addr, 2*time.Second, TypePollReq, nil, TypePollOK, &reply); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never recovered after restart")
		}
	}
	if got := uint8(s2.lastCodec.Load()); got != CodecJSON {
		t.Fatalf("downgraded generation saw codec %d, want JSON", got)
	}
}
