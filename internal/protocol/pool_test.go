package protocol

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faucets/internal/chaos"
)

// countingPoolObs records pool lifecycle events for assertions.
type countingPoolObs struct {
	open      atomic.Int64
	checkouts atomic.Int64
	redials   atomic.Int64
	reaps     atomic.Int64
}

func (o *countingPoolObs) PoolConnOpen(delta int) { o.open.Add(int64(delta)) }
func (o *countingPoolObs) PoolCheckout()          { o.checkouts.Add(1) }
func (o *countingPoolObs) PoolRedial()            { o.redials.Add(1) }
func (o *countingPoolObs) PoolIdleReap()          { o.reaps.Add(1) }

// poolEchoServer answers PollReq with PollOK on every accepted
// connection, echoing frame IDs so pipelined callers demultiplex the
// replies. It counts accepted connections.
type poolEchoServer struct {
	l       net.Listener
	accepts atomic.Int64
}

func startPoolEcho(t *testing.T) *poolEchoServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s := &poolEchoServer{l: l}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.accepts.Add(1)
			go func() {
				defer conn.Close()
				rc := NewReplyConn(conn)
				for {
					f, err := ReadFrame(conn)
					if err != nil {
						return
					}
					rc.SetID(f.ID)
					if f.Type != TypePollReq {
						_ = WriteError(rc, "unexpected "+f.Type)
						continue
					}
					_ = WriteFrame(rc, TypePollOK, PollOK{UsedPE: 7})
				}
			}()
		}
	}()
	return s
}

func (s *poolEchoServer) addr() string { return s.l.Addr().String() }

// waitConns polls until the pool reports want open connections.
func waitConns(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.OpenConns() != want {
		if time.Now().After(deadline) {
			t.Fatalf("pool still holds %d conns, want %d", p.OpenConns(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPoolReusesConnection: sequential calls must share one persistent
// connection instead of dialing per call.
func TestPoolReusesConnection(t *testing.T) {
	s := startPoolEcho(t)
	p := &Pool{}
	defer p.Close()
	for i := 0; i < 5; i++ {
		var reply PollOK
		if err := p.Call(s.addr(), time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
			t.Fatal(err)
		}
		if reply.UsedPE != 7 {
			t.Fatalf("reply=%+v", reply)
		}
	}
	if got := s.accepts.Load(); got != 1 {
		t.Fatalf("5 calls used %d connections, want 1", got)
	}
}

// TestPoolPipelinesOneConnection: with Size 1, concurrent calls share
// the single connection via frame-ID multiplexing — they must all
// succeed without opening a second connection.
func TestPoolPipelinesOneConnection(t *testing.T) {
	s := startPoolEcho(t)
	p := &Pool{Size: 1}
	defer p.Close()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reply PollOK
			errs[i] = p.Call(s.addr(), 2*time.Second, TypePollReq, PollReq{}, TypePollOK, &reply)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := s.accepts.Load(); got != 1 {
		t.Fatalf("pipelined calls opened %d connections, want 1", got)
	}
}

// TestPoolHonorsSize: concurrent calls may open connections up to Size
// and no further.
func TestPoolHonorsSize(t *testing.T) {
	s := startPoolEcho(t)
	p := &Pool{Size: 3}
	defer p.Close()
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var reply PollOK
			_ = p.Call(s.addr(), 2*time.Second, TypePollReq, PollReq{}, TypePollOK, &reply)
		}()
	}
	wg.Wait()
	if got := s.accepts.Load(); got > 3 {
		t.Fatalf("pool opened %d connections, cap is 3", got)
	}
}

// TestPoolIdleReap: an unused connection must be closed by the reaper
// and reported to the observer.
func TestPoolIdleReap(t *testing.T) {
	s := startPoolEcho(t)
	obs := &countingPoolObs{}
	p := &Pool{IdleTimeout: 30 * time.Millisecond, PoolObs: obs}
	defer p.Close()
	var reply PollOK
	if err := p.Call(s.addr(), time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
		t.Fatal(err)
	}
	waitConns(t, p, 0)
	if obs.reaps.Load() == 0 {
		t.Fatal("idle reap not observed")
	}
	if obs.open.Load() != 0 {
		t.Fatalf("open-conn gauge drifted to %d, want 0", obs.open.Load())
	}
	// The pool stays usable after a reap.
	if err := p.Call(s.addr(), time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
		t.Fatal(err)
	}
}

// TestPoolRedialsBrokenConnection: a server that hangs up mid-call
// forces a redial under the Retry policy; the call still succeeds and
// the redial is observed.
func TestPoolRedialsBrokenConnection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var accepts atomic.Int64
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			n := accepts.Add(1)
			go func() {
				defer conn.Close()
				rc := NewReplyConn(conn)
				for {
					f, err := ReadFrame(conn)
					if err != nil {
						return
					}
					if n == 1 {
						return // first connection: hang up without answering
					}
					rc.SetID(f.ID)
					_ = WriteFrame(rc, TypePollOK, PollOK{UsedPE: 9})
				}
			}()
		}
	}()

	obs := &countingPoolObs{}
	p := &Pool{
		PoolObs: obs,
		Retry:   Retry{Attempts: 3, Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
	}
	defer p.Close()
	var reply PollOK
	if err := p.Call(l.Addr().String(), time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.UsedPE != 9 {
		t.Fatalf("reply=%+v", reply)
	}
	if obs.redials.Load() == 0 {
		t.Fatal("redial not observed")
	}
	if accepts.Load() < 2 {
		t.Fatalf("server saw %d connections, want ≥2", accepts.Load())
	}
}

// TestPoolCallDeadlineKillsConnection: a peer that accepts requests but
// never answers costs the caller at most the deadline, and the hung
// connection must not be handed to later calls.
func TestPoolCallDeadlineKillsConnection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					if _, err := ReadFrame(conn); err != nil {
						return // swallow requests silently
					}
				}
			}()
		}
	}()
	p := &Pool{Retry: Retry{Attempts: 1}}
	defer p.Close()
	start := time.Now()
	var reply PollOK
	err = p.Call(l.Addr().String(), 50*time.Millisecond, TypePollReq, PollReq{}, TypePollOK, &reply)
	if err == nil {
		t.Fatal("call to silent peer succeeded")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("deadline took %v to fire", took)
	}
	waitConns(t, p, 0)
}

// TestPoolRemoteErrorAbortsAndKeepsConnection: a refusal from the peer
// is a *RemoteError, is not retried, and leaves the (healthy)
// connection pooled.
func TestPoolRemoteErrorAbortsAndKeepsConnection(t *testing.T) {
	s := startPoolEcho(t)
	p := &Pool{}
	defer p.Close()
	var reply WeatherOK
	err := p.Call(s.addr(), time.Second, TypeWeatherReq, WeatherReq{}, TypeWeatherOK, &reply)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if got := s.accepts.Load(); got != 1 {
		t.Fatalf("remote refusal consumed %d connections, want 1", got)
	}
	if p.OpenConns() != 1 {
		t.Fatalf("refused call evicted the healthy connection (open=%d)", p.OpenConns())
	}
	// The same connection still answers well-formed calls.
	var ok PollOK
	if err := p.Call(s.addr(), time.Second, TypePollReq, PollReq{}, TypePollOK, &ok); err != nil {
		t.Fatal(err)
	}
	if got := s.accepts.Load(); got != 1 {
		t.Fatalf("follow-up call dialed a new connection (accepts=%d)", got)
	}
}

// TestPoolCloseFailsFutureCalls: Close severs pooled connections and
// future Calls fail with ErrPoolClosed instead of redialing.
func TestPoolCloseFailsFutureCalls(t *testing.T) {
	s := startPoolEcho(t)
	p := &Pool{}
	var reply PollOK
	if err := p.Call(s.addr(), time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
		t.Fatal(err)
	}
	p.Close()
	err := p.Call(s.addr(), time.Second, TypePollReq, PollReq{}, TypePollOK, &reply)
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("want ErrPoolClosed, got %v", err)
	}
	if p.OpenConns() != 0 {
		t.Fatalf("closed pool still holds %d conns", p.OpenConns())
	}
}

// TestPoolObserverAccounting: the open-conn gauge and checkout counter
// reflect a simple call sequence.
func TestPoolObserverAccounting(t *testing.T) {
	s := startPoolEcho(t)
	obs := &countingPoolObs{}
	p := &Pool{PoolObs: obs}
	var reply PollOK
	for i := 0; i < 3; i++ {
		if err := p.Call(s.addr(), time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
			t.Fatal(err)
		}
	}
	if obs.checkouts.Load() != 3 {
		t.Fatalf("checkouts=%d, want 3", obs.checkouts.Load())
	}
	if obs.open.Load() != 1 {
		t.Fatalf("open gauge=%d, want 1", obs.open.Load())
	}
	p.Close()
	if obs.open.Load() != 0 {
		t.Fatalf("open gauge=%d after Close, want 0", obs.open.Load())
	}
}

// TestPoolPartitionEvictsAndHeals: a pooled connection caught in a
// chaos partition must fail fast (evicting the broken connection, not
// wedging the caller), and the first Call after the heal must succeed.
func TestPoolPartitionEvictsAndHeals(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 42})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	wl := inj.WrapListener(l)
	go func() {
		for {
			conn, err := wl.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				rc := NewReplyConn(conn)
				for {
					f, err := ReadFrame(conn)
					if err != nil {
						return
					}
					rc.SetID(f.ID)
					_ = WriteFrame(rc, TypePollOK, PollOK{UsedPE: 5})
				}
			}()
		}
	}()

	p := &Pool{Retry: Retry{Attempts: 2, Base: 5 * time.Millisecond, Max: 20 * time.Millisecond}}
	defer p.Close()
	addr := l.Addr().String()
	var reply PollOK
	if err := p.Call(addr, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
		t.Fatal(err)
	}
	if p.OpenConns() != 1 {
		t.Fatalf("open=%d before partition, want 1", p.OpenConns())
	}

	inj.Partition(true)
	start := time.Now()
	if err := p.Call(addr, 5*time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err == nil {
		t.Fatal("call through open partition succeeded")
	}
	// Fail fast: the severed connection delivers the error well before
	// the 5s per-call deadline would.
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("partitioned call took %v, expected fast failure", took)
	}
	waitConns(t, p, 0)

	inj.Partition(false)
	if err := p.Call(addr, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
	if reply.UsedPE != 5 {
		t.Fatalf("reply=%+v", reply)
	}
}

// rpcObsRecorder pins the Observer contract for the one-shot helpers.
type rpcObsRecorder struct {
	mu    sync.Mutex
	types []string
	errs  []error
}

func (r *rpcObsRecorder) ObserveRPC(reqType string, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.types = append(r.types, reqType)
	r.errs = append(r.errs, err)
}

// TestDialCallObsObservesDialFailure pins that a failed dial is still
// observed: the error must reach the Observer (feeding the
// faucets_rpc_errors_total counter), not just the caller.
func TestDialCallObsObservesDialFailure(t *testing.T) {
	// An address that refuses connections: bind a port, then close it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	obs := &rpcObsRecorder{}
	var reply PollOK
	callErr := DialCallObs(obs, addr, 200*time.Millisecond, TypePollReq, PollReq{}, TypePollOK, &reply)
	if callErr == nil {
		t.Fatal("dial to closed port succeeded")
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.errs) != 1 {
		t.Fatalf("observer saw %d calls, want 1", len(obs.errs))
	}
	if obs.types[0] != TypePollReq {
		t.Fatalf("observed type %q, want %q", obs.types[0], TypePollReq)
	}
	if obs.errs[0] == nil {
		t.Fatal("dial failure not observed: Observer got a nil error")
	}
}

// TestPoolCallObservesOutcome: Pool.Call feeds the same Observer
// contract as DialCallObs — success and dial failure both observed.
func TestPoolCallObservesOutcome(t *testing.T) {
	s := startPoolEcho(t)
	obs := &rpcObsRecorder{}
	p := &Pool{Obs: obs, Retry: Retry{Attempts: 1}, DialTimeout: 200 * time.Millisecond}
	defer p.Close()
	var reply PollOK
	if err := p.Call(s.addr(), time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err != nil {
		t.Fatal(err)
	}
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	if err := p.Call(deadAddr, time.Second, TypePollReq, PollReq{}, TypePollOK, &reply); err == nil {
		t.Fatal("call to closed port succeeded")
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.errs) != 2 {
		t.Fatalf("observer saw %d calls, want 2", len(obs.errs))
	}
	if obs.errs[0] != nil {
		t.Fatalf("success observed with error %v", obs.errs[0])
	}
	if obs.errs[1] == nil {
		t.Fatal("pooled dial failure not observed")
	}
}
