package protocol

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Codec negotiation: a dialer that wants the binary codec opens the
// connection with a JSON codec_hello frame naming the newest codec
// version it speaks; the server answers codec_ok with the highest
// version both sides support. The hello itself is always JSON, so it is
// readable by every server ever shipped — a peer predating the exchange
// answers with a TypeError frame ("unsupported frame"), which the
// dialer treats as "JSON only". Negotiation happens once per
// connection, before the connection joins a pool, so the round trip is
// amortized over the connection's lifetime; one-shot exchanges skip it
// and stay JSON.

// Codec negotiation frame types.
const (
	TypeCodecHello = "codec_hello"
	TypeCodecOK    = "codec_ok"
)

// CodecHello asks the server to switch the connection to a newer codec.
type CodecHello struct {
	// MaxVersion is the newest codec version the dialer speaks.
	MaxVersion uint8 `json:"max_version"`
}

// CodecOK answers with the agreed version: min(server max, hello max).
type CodecOK struct {
	Version uint8 `json:"version"`
}

// CodecObserver is the optional extension of PoolObserver that receives
// the outcome of each connection's codec negotiation;
// telemetry.PoolMetrics implements it (faucets_rpc_codec series).
type CodecObserver interface {
	CodecNegotiated(version int)
}

// ParseWireCodec maps a -wire-codec flag value to the highest codec
// version a component should negotiate or accept: "auto" and "binary"
// allow the binary codec, "json" pins the JSON wire format (debugging,
// or talking to peers that must never see binary frames). The empty
// string means auto.
func ParseWireCodec(s string) (uint8, error) {
	switch s {
	case "", "auto", "binary":
		return MaxCodecVersion, nil
	case "json":
		return CodecJSON, nil
	}
	return 0, fmt.Errorf("protocol: unknown wire codec %q (want auto, binary, or json)", s)
}

// Negotiate performs the codec hello exchange on a fresh connection and
// returns the agreed version. A peer that does not speak the exchange —
// an older server answering with a TypeError frame, or a stub answering
// with some fixed reply type — selects CodecJSON; only transport
// failures are returned as errors, since they mean the connection
// itself is unusable. The exchange is bounded by timeout (zero =
// DefaultCallTimeout).
func Negotiate(conn net.Conn, timeout time.Duration) (uint8, error) {
	if err := conn.SetDeadline(time.Now().Add(Timeout(timeout))); err != nil {
		return 0, fmt.Errorf("protocol: set deadline: %w", err)
	}
	defer conn.SetDeadline(time.Time{})
	var ok CodecOK
	err := Call(conn, TypeCodecHello, CodecHello{MaxVersion: MaxCodecVersion}, TypeCodecOK, &ok)
	if err != nil {
		var remote *RemoteError
		var mismatch *IDMismatchError
		if errors.As(err, &remote) || errors.As(err, &mismatch) ||
			errors.Is(err, ErrBadType) || errors.Is(err, ErrEmptyBody) {
			return CodecJSON, nil
		}
		return 0, err
	}
	if ok.Version > MaxCodecVersion {
		// A buggy peer offering more than we asked for: stay JSON rather
		// than emit frames it may mean differently.
		return CodecJSON, nil
	}
	return ok.Version, nil
}

// AnswerHello replies to a codec_hello frame on behalf of a server that
// speaks codecs up to maxVersion ("json"-pinned servers pass CodecJSON
// and keep every connection on JSON). The reply is written through w so
// ReplyConn echo stamping applies; it is always JSON, since the dialer
// has not switched codecs yet.
func AnswerHello(w io.Writer, f Frame, maxVersion uint8) error {
	var h CodecHello
	if err := Decode(f, TypeCodecHello, &h); err != nil {
		return err
	}
	v := maxVersion
	if h.MaxVersion < v {
		v = h.MaxVersion
	}
	return WriteFrame(w, TypeCodecOK, CodecOK{Version: v})
}
