package grid

import (
	"fmt"
	"testing"
	"time"

	"faucets/internal/client"
	"faucets/internal/market"
)

// shardedClusters are deliberately identical in Speed and CostRate so
// total revenue depends only on the contracts, not on which shard or
// server wins each auction — the invariant the kill tests compare.
func shardedClusters() []ClusterSpec {
	return []ClusterSpec{
		{Spec: spec("turing", 64, 0.01), Apps: []string{"synth"}},
		{Spec: spec("lemieux", 64, 0.01), Apps: []string{"synth"}},
		{Spec: spec("tungsten", 64, 0.01), Apps: []string{"synth"}},
	}
}

var shardedUsers = []string{"alice", "bob", "carol", "dave"}

func startShardedGrid(t *testing.T, shards int) *Grid {
	t.Helper()
	users := map[string]string{}
	for _, u := range shardedUsers {
		users[u] = "pw"
	}
	g, err := Start(shardedClusters(), Options{
		Users:          users,
		Shards:         shards,
		StateDir:       t.TempDir(),
		PollInterval:   50 * time.Millisecond,
		RPCTimeout:     500 * time.Millisecond,
		SettleRetry:    20 * time.Millisecond,
		ReRegister:     50 * time.Millisecond,
		GossipInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestShardedGridDirectoryConverges boots a 3-shard mesh and checks
// that, with daemons registered only at their owning shard, gossip
// gives every shard (and therefore any client, wherever its login
// lands) the full 3-server directory — and a fleet-wide weather view.
func TestShardedGridDirectoryConverges(t *testing.T) {
	g := startShardedGrid(t, 3)
	defer g.Close()

	if len(g.Shards) != 3 || len(g.ShardAddrs) != 3 {
		t.Fatalf("expected 3 shards, got %d (%v)", len(g.Shards), g.ShardAddrs)
	}

	var cl *client.Client
	retryUntil(t, "login", 10*time.Second, func() error {
		var err error
		cl, err = g.Login("alice", "pw")
		return err
	})
	if len(cl.Shards) != 3 {
		t.Errorf("client shard map: got %v, want 3 addresses", cl.Shards)
	}

	retryUntil(t, "directory convergence", 10*time.Second, func() error {
		servers, err := cl.ListServers(nil)
		if err != nil {
			return err
		}
		if len(servers) != 3 {
			return fmt.Errorf("client sees %d servers, want 3", len(servers))
		}
		return nil
	})

	// Every shard individually: full directory and fleet-wide weather,
	// even though each polls only its own daemons.
	for i, s := range g.Shards {
		i, s := i, s
		retryUntil(t, fmt.Sprintf("shard %d convergence", i), 10*time.Second, func() error {
			if n := len(s.FederatedServers(nil)); n != 3 {
				return fmt.Errorf("shard %d directory has %d servers, want 3", i, n)
			}
			if w := s.Weather(); w.Servers != 3 {
				return fmt.Errorf("shard %d weather sees %d servers, want 3", i, w.Servers)
			}
			return nil
		})
	}
}

// shardedTally counts settled-history records per job across every
// shard's database and sums the clusters' revenue grid-wide.
func shardedTally(g *Grid) (perJob map[string]int, revenue float64) {
	perJob = map[string]int{}
	for _, r := range g.Contracts(10_000) {
		perJob[r.JobID]++
	}
	for _, cl := range g.clusters {
		revenue += g.Revenue(cl.Spec.Name)
	}
	return perJob, revenue
}

// runShardedKillWorkload drives a durable 3-shard grid through two
// placement rounds from four users (users and server names scatter over
// the ring, so settlements routinely cross shards via forwarding).
// With kill >= 0 that shard is crash-stopped after round one — the
// window where finished jobs hold unacknowledged settlements — and
// restarted before round two. Returns per-job settle counts + revenue.
func runShardedKillWorkload(t *testing.T, kill int) (map[string]int, float64) {
	t.Helper()
	g := startShardedGrid(t, 3)
	defer g.Close()

	var jobIDs []string
	placeRound := func(round int) {
		for _, u := range shardedUsers {
			var jobID string
			retryUntil(t, fmt.Sprintf("round %d job for %s", round, u), 30*time.Second, func() error {
				// A fresh login per attempt: after a shard restart the
				// user's session is gone, and a Place retried wholesale
				// runs under a new job ID (the orphaned reservation never
				// starts, so it never settles).
				c, err := g.Login(u, "pw")
				if err != nil {
					return err
				}
				p, err := c.Place(contract(1500), market.LeastCost{})
				if err != nil {
					return err
				}
				if err := c.Start(p); err != nil {
					return err
				}
				jobID = p.JobID
				return nil
			})
			jobIDs = append(jobIDs, jobID)
		}
	}

	placeRound(1)
	if kill >= 0 {
		// Let the short jobs finish so settlements are in flight, then
		// crash the shard. Settles addressed to it (directly or by
		// forwarding) fail retryably into the daemons' durable outboxes.
		time.Sleep(150 * time.Millisecond)
		if err := g.KillShard(kill); err != nil {
			t.Fatalf("kill shard %d: %v", kill, err)
		}
		time.Sleep(100 * time.Millisecond)
		if err := g.RestartShard(kill); err != nil {
			t.Fatalf("restart shard %d: %v", kill, err)
		}
	}
	placeRound(2)

	deadline := time.Now().Add(60 * time.Second)
	for {
		perJob, _ := shardedTally(g)
		done := 0
		for _, id := range jobIDs {
			if perJob[id] >= 1 {
				done++
			}
		}
		if done == len(jobIDs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs settled: %v", done, len(jobIDs), perJob)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Let any straggling redeliveries land before counting duplicates.
	time.Sleep(100 * time.Millisecond)
	return shardedTally(g)
}

// TestShardedGridKillAnyShardExactlyOnce is the acceptance test for the
// sharded control plane: for EVERY shard of a 3-shard mesh, crashing
// that shard mid-workload must lose no settlements — each job settles
// exactly once and total revenue matches the run where nothing died.
func TestShardedGridKillAnyShardExactlyOnce(t *testing.T) {
	baseJobs, baseRevenue := runShardedKillWorkload(t, -1)
	for id, n := range baseJobs {
		if n != 1 {
			t.Errorf("no-kill run: job %s settled %d times", id, n)
		}
	}
	if baseRevenue == 0 {
		t.Fatal("no-kill run produced no revenue")
	}

	for k := 0; k < 3; k++ {
		k := k
		t.Run(fmt.Sprintf("kill-shard-%d", k), func(t *testing.T) {
			jobs, revenue := runShardedKillWorkload(t, k)
			for id, n := range jobs {
				if n != 1 {
					t.Errorf("job %s settled %d times", id, n)
				}
			}
			if len(jobs) != len(baseJobs) {
				t.Errorf("settled job count: kill=%d baseline=%d", len(jobs), len(baseJobs))
			}
			if revenue != baseRevenue {
				t.Errorf("revenue diverged: kill=%v baseline=%v", revenue, baseRevenue)
			}
		})
	}
}
