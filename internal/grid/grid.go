// Package grid boots a complete live Faucets system — Central Server,
// AppSpector, and one Faucets Daemon per Compute Server — on loopback
// listeners. It exists so integration tests and the quickstart example
// can exercise the real wire protocol end to end (paper Fig 1) without
// external processes.
package grid

import (
	"fmt"
	"net"
	"time"

	"faucets/internal/accounting"
	"faucets/internal/appspector"
	"faucets/internal/bidding"
	"faucets/internal/central"
	"faucets/internal/client"
	"faucets/internal/daemon"
	"faucets/internal/machine"
	"faucets/internal/protocol"
	"faucets/internal/scheduler"
)

// ClusterSpec describes one Compute Server to boot.
type ClusterSpec struct {
	Spec machine.Spec
	// Apps this cluster exports as Known Applications (§2.2).
	Apps []string
	// NewScheduler defaults to adaptive equipartition.
	NewScheduler func(machine.Spec, scheduler.Config) scheduler.Scheduler
	// Bidder defaults to the baseline strategy.
	Bidder bidding.Generator
	// Home is the bartering cluster; defaults to Spec.Name.
	Home string
}

// Options configures the whole grid.
type Options struct {
	// Mode is the economic context; default Dollars.
	Mode accounting.Mode
	// TimeScale compresses virtual time (default 1000: one wall
	// millisecond per virtual second) so tests finish quickly.
	TimeScale float64
	// Users maps userid → password accounts to create.
	Users map[string]string
	// Homes maps userid → home cluster for bartering.
	Homes map[string]string
	// SchedCfg is shared scheduler configuration.
	SchedCfg scheduler.Config
	// PollInterval enables the FS registry refresh loop when > 0.
	PollInterval time.Duration
	// RPCTimeout bounds every wire round trip (FS polls, FD
	// register/verify/settle); zero uses protocol defaults.
	RPCTimeout time.Duration
	// SettleRetry is the daemons' settlement-outbox redelivery cadence.
	SettleRetry time.Duration
}

// Grid is a running loopback Faucets deployment.
type Grid struct {
	Central        *central.Server
	CentralAddr    string
	AppSpector     *appspector.Server
	AppSpectorAddr string
	Daemons        []*daemon.Daemon
}

// Start boots the system: FS first, then AS, then every FD (which
// registers itself with the FS, as in the paper).
func Start(clusters []ClusterSpec, opts Options) (*Grid, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("grid: no clusters")
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 1000
	}
	g := &Grid{}

	g.Central = central.New(opts.Mode)
	for user, pw := range opts.Users {
		if err := g.Central.Auth.AddUser(user, pw, opts.Homes[user]); err != nil {
			return nil, err
		}
	}
	fsl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	g.CentralAddr = fsl.Addr().String()
	if opts.RPCTimeout > 0 {
		g.Central.PollTimeout = opts.RPCTimeout
		g.Central.RPCTimeout = opts.RPCTimeout
	}
	go g.Central.Serve(fsl)
	if opts.PollInterval > 0 {
		g.Central.StartPolling(opts.PollInterval)
	}

	g.AppSpector = appspector.NewServer(func(token string) (string, error) {
		return g.Central.Auth.Verify(token)
	})
	asl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		g.Close()
		return nil, err
	}
	g.AppSpectorAddr = asl.Addr().String()
	go g.AppSpector.Serve(asl)

	for _, cl := range clusters {
		factory := cl.NewScheduler
		if factory == nil {
			factory = func(sp machine.Spec, c scheduler.Config) scheduler.Scheduler {
				return scheduler.NewEquipartition(sp, c)
			}
		}
		d, err := daemon.New(daemon.Config{
			Info:           protocol.ServerInfo{Spec: cl.Spec, Apps: cl.Apps, Home: cl.Home},
			Scheduler:      factory(cl.Spec, opts.SchedCfg),
			Bidder:         cl.Bidder,
			CentralAddr:    g.CentralAddr,
			AppSpectorAddr: g.AppSpectorAddr,
			TimeScale:      opts.TimeScale,
			RPCTimeout:     opts.RPCTimeout,
			SettleRetry:    opts.SettleRetry,
		})
		if err != nil {
			g.Close()
			return nil, err
		}
		dl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			g.Close()
			return nil, err
		}
		if err := d.Start(dl); err != nil {
			g.Close()
			return nil, err
		}
		g.Daemons = append(g.Daemons, d)
	}
	return g, nil
}

// Login opens an authenticated client session against this grid.
func (g *Grid) Login(user, password string) (*client.Client, error) {
	c, err := client.Login(g.CentralAddr, user, password)
	if err != nil {
		return nil, err
	}
	c.AppSpectorAddr = g.AppSpectorAddr
	return c, nil
}

// Close shuts every component down (daemons first so their settlement
// calls still find the Central Server).
func (g *Grid) Close() {
	for _, d := range g.Daemons {
		d.Close()
	}
	if g.AppSpector != nil {
		g.AppSpector.Close()
	}
	if g.Central != nil {
		g.Central.Close()
	}
}
