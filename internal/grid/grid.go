// Package grid boots a complete live Faucets system — Central Server,
// AppSpector, and one Faucets Daemon per Compute Server — on loopback
// listeners. It exists so integration tests and the quickstart example
// can exercise the real wire protocol end to end (paper Fig 1) without
// external processes.
package grid

import (
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"faucets/internal/accounting"
	"faucets/internal/appspector"
	"faucets/internal/bidding"
	"faucets/internal/central"
	"faucets/internal/chaos"
	"faucets/internal/client"
	"faucets/internal/daemon"
	"faucets/internal/db"
	"faucets/internal/health"
	"faucets/internal/machine"
	"faucets/internal/protocol"
	"faucets/internal/scheduler"
	"faucets/internal/shard"
	"faucets/internal/telemetry"
)

// ClusterSpec describes one Compute Server to boot.
type ClusterSpec struct {
	Spec machine.Spec
	// Apps this cluster exports as Known Applications (§2.2).
	Apps []string
	// NewScheduler defaults to adaptive equipartition.
	NewScheduler func(machine.Spec, scheduler.Config) scheduler.Scheduler
	// Bidder defaults to the baseline strategy.
	Bidder bidding.Generator
	// Home is the bartering cluster; defaults to Spec.Name.
	Home string
	// WireCodec overrides Options.WireCodec for this cluster's daemon —
	// set "json" to model a legacy JSON-only daemon inside an otherwise
	// binary-codec grid (mixed-version interop tests).
	WireCodec string
	// Chaos, when set, additionally wraps THIS cluster's listener with
	// its own fault injector — the way soak tests make a minority of
	// daemons sick (slow-loris, stalled) while the rest of the grid and
	// any grid-wide Options.Chaos schedule stay healthy.
	Chaos *chaos.Injector
}

// Options configures the whole grid.
type Options struct {
	// Mode is the economic context; default Dollars.
	Mode accounting.Mode
	// TimeScale compresses virtual time (default 1000: one wall
	// millisecond per virtual second) so tests finish quickly.
	TimeScale float64
	// Users maps userid → password accounts to create.
	Users map[string]string
	// Homes maps userid → home cluster for bartering.
	Homes map[string]string
	// SchedCfg is shared scheduler configuration.
	SchedCfg scheduler.Config
	// PollInterval enables the FS registry refresh loop when > 0.
	PollInterval time.Duration
	// RPCTimeout bounds every wire round trip (FS polls, FD
	// register/verify/settle); zero uses protocol defaults.
	RPCTimeout time.Duration
	// PoolSize caps every component's persistent RPC connections per
	// peer address (the in-process equivalent of -rpc-pool-size; zero =
	// protocol.DefaultPoolSize).
	PoolSize int
	// SettleRetry is the daemons' settlement-outbox redelivery cadence.
	SettleRetry time.Duration
	// BidConcurrency bounds every client's bid fan-out during Place
	// (the in-process -bid-concurrency; zero = market default).
	BidConcurrency int
	// BidTimeout is the clients' per-bid deadline: a hung daemon
	// forfeits its bid instead of stalling the auction (the in-process
	// -bid-timeout; zero = none).
	BidTimeout time.Duration
	// WALGroupWindow is the Central Server database's group-commit
	// accumulation window (the in-process -wal-group-window; zero =
	// flush immediately). Only meaningful with StateDir.
	WALGroupWindow time.Duration
	// ReRegister is the daemons' Central Server heartbeat cadence, so a
	// restarted FS rebuilds its directory quickly in tests.
	ReRegister time.Duration
	// StateDir makes the grid durable: the Central Server journals under
	// <StateDir>/central and each daemon under <StateDir>/fd-<name>, and
	// RestartCentral/RestartDaemon recover from those directories.
	StateDir string
	// Chaos, when set, wraps every component listener so all grid
	// traffic passes through the fault injector.
	Chaos *chaos.Injector
	// Metrics opens a loopback /metrics endpoint per component (the
	// in-process equivalent of each daemon's -metrics-addr flag); read
	// the addresses back with MetricsAddr.
	Metrics bool
	// WireCodec is every component's wire codec setting (the in-process
	// -wire-codec): "auto"/"binary" negotiate the binary codec, "json"
	// pins JSON; empty = auto. ClusterSpec.WireCodec overrides it per
	// daemon.
	WireCodec string
	// MaxInflight is the Central Server's admission-control budget (the
	// in-process -max-inflight; zero = admission off).
	MaxInflight int
	// BreakerThreshold/BreakerCooldown configure circuit breakers on the
	// Central Server's liveness poller and every client's bid fan-out
	// (the in-process -breaker-threshold/-breaker-cooldown; zero
	// threshold = breakers off).
	BreakerThreshold float64
	BreakerCooldown  time.Duration
	// HedgeQuantile turns on hedged bid solicitation for clients (the
	// in-process -hedge-quantile; zero = off).
	HedgeQuantile float64
	// Mechanism is the market mechanism clients place jobs under (a
	// qos.Mechanism* name; empty = first-price). Also advertised by the
	// Central Server as the grid default (the in-process -mechanism).
	Mechanism string
	// BrownoutFsync/BrownoutQueue are the Central Server's brownout
	// thresholds; setting either starts the brownout monitor (the
	// in-process -brownout-fsync/-brownout-queue).
	BrownoutFsync time.Duration
	BrownoutQueue int
	// BrownoutInterval overrides the monitor cadence (zero =
	// central.DefaultBrownoutInterval).
	BrownoutInterval time.Duration
	// Shards boots the Central Server as a consistent-hash mesh of this
	// many cooperating shards (internal/shard): users and server names
	// partition across them, daemons register with their owning shard,
	// and shards gossip liveness/weather digests. 0 or 1 keeps the
	// singleton Central Server, byte-identical to before.
	Shards int
	// GossipInterval is the shard digest push cadence (zero =
	// central.DefaultGossipInterval). Only meaningful with Shards > 1.
	GossipInterval time.Duration
}

// Grid is a running loopback Faucets deployment.
type Grid struct {
	Central        *central.Server
	CentralAddr    string
	AppSpector     *appspector.Server
	AppSpectorAddr string
	Daemons        []*daemon.Daemon

	// Shards holds every Central Server shard when Options.Shards > 1,
	// index-aligned with ShardAddrs; Shards[0] == Central. Empty on
	// single-shard grids.
	Shards     []*central.Server
	ShardAddrs []string
	ring       *shard.Ring

	// Tracer is shared by the grid's clients and daemons, so one trace
	// accumulates a job's full submit→settle span chain.
	Tracer *telemetry.Tracer

	// Boot parameters, kept so Restart* can rebuild a component on its
	// original address from its state directory.
	opts        Options
	clusters    []ClusterSpec
	daemonAddrs []string

	// mu guards the component pointers above against concurrent reads
	// from the metrics endpoints while Restart* swaps a component.
	mu           sync.Mutex
	metricsLns   []net.Listener
	metricsAddrs map[string]string
}

// Start boots the system: FS first, then AS, then every FD (which
// registers itself with the FS, as in the paper).
func Start(clusters []ClusterSpec, opts Options) (*Grid, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("grid: no clusters")
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 1000
	}
	g := &Grid{
		opts:         opts,
		clusters:     clusters,
		Tracer:       telemetry.NewTracer(0),
		metricsAddrs: map[string]string{},
	}

	if opts.Shards > 1 {
		if err := g.startShards(opts.Shards); err != nil {
			g.Close()
			return nil, err
		}
	} else {
		fs, err := g.newCentral()
		if err != nil {
			return nil, err
		}
		g.Central = fs
		fsl, err := g.listen("")
		if err != nil {
			return nil, err
		}
		g.CentralAddr = fsl.Addr().String()
		go g.Central.Serve(fsl)
		if opts.PollInterval > 0 {
			g.Central.StartPolling(opts.PollInterval)
		}
		if err := g.serveMetrics("central", func() *telemetry.Registry { return g.Central.Metrics }); err != nil {
			g.Close()
			return nil, err
		}
	}

	g.AppSpector = appspector.NewServer(g.verifyToken)
	asl, err := g.listen("")
	if err != nil {
		g.Close()
		return nil, err
	}
	g.AppSpectorAddr = asl.Addr().String()
	go g.AppSpector.Serve(asl)
	if err := g.serveMetrics("appspector", func() *telemetry.Registry { return g.AppSpector.Metrics }); err != nil {
		g.Close()
		return nil, err
	}

	for i := range clusters {
		d, addr, err := g.startDaemon(i, "")
		if err != nil {
			g.Close()
			return nil, err
		}
		g.Daemons = append(g.Daemons, d)
		g.daemonAddrs = append(g.daemonAddrs, addr)
		idx := i
		if err := g.serveMetrics("fd-"+clusters[i].Spec.Name, func() *telemetry.Registry {
			return g.Daemons[idx].Metrics()
		}); err != nil {
			g.Close()
			return nil, err
		}
	}
	return g, nil
}

// serveMetrics opens a loopback /metrics + /trace endpoint for one
// component when Options.Metrics is on. The registry is resolved through
// regFn on every request, so a component replaced by RestartCentral or
// RestartDaemon is scraped through the same endpoint — no stale registry
// behind a surviving listener.
func (g *Grid) serveMetrics(name string, regFn func() *telemetry.Registry) error {
	if !g.opts.Metrics {
		return nil
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("grid: metrics listener: %w", err)
	}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		reg := regFn()
		g.mu.Unlock()
		telemetry.Handler(reg, g.Tracer).ServeHTTP(w, r)
	})
	go func() { _ = http.Serve(l, h) }()
	g.mu.Lock()
	g.metricsLns = append(g.metricsLns, l)
	g.metricsAddrs[name] = l.Addr().String()
	g.mu.Unlock()
	return nil
}

// MetricsAddr returns the scrape address of a component's /metrics
// endpoint ("central", "appspector", or "fd-<cluster>"); "" when
// Options.Metrics was off or the name is unknown.
func (g *Grid) MetricsAddr(name string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.metricsAddrs[name]
}

// listen opens a loopback listener (addr "" picks a free port; a
// concrete addr rebinds a restarting component's old port, retrying
// briefly while the dying listener's socket drains). Wrapped with the
// fault injector when chaos is on.
func (g *Grid) listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var l net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("grid: relisten %s: %w", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g.opts.Chaos != nil {
		l = g.opts.Chaos.WrapListener(l)
	}
	return l, nil
}

// startShards boots Options.Shards Central Servers as one consistent-
// hash mesh. Listeners are opened first so the ring can be built from
// real addresses; then each shard comes up already knowing the full
// membership, with its peers set to the other shards and the gossip
// loop running. Daemons registered later are routed to the shard that
// owns their name, so each daemon is polled by exactly one shard.
func (g *Grid) startShards(n int) error {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		l, err := g.listen("")
		if err != nil {
			for _, prev := range lns[:i] {
				prev.Close()
			}
			return err
		}
		lns[i] = l
		addrs[i] = l.Addr().String()
	}
	g.ring = shard.New(addrs)
	g.ShardAddrs = addrs
	for i := range lns {
		fs, err := g.newCentralAt(shardStateSub(i), g.ring, addrs[i])
		if err != nil {
			for _, rest := range lns[i:] {
				rest.Close()
			}
			return err
		}
		g.Shards = append(g.Shards, fs)
		go fs.Serve(lns[i])
		if g.opts.PollInterval > 0 {
			fs.StartPolling(g.opts.PollInterval)
		}
		fs.StartGossip()
		name := "central"
		if i > 0 {
			name = fmt.Sprintf("central-%d", i)
		}
		idx := i
		if err := g.serveMetrics(name, func() *telemetry.Registry {
			return g.Shards[idx].Metrics
		}); err != nil {
			return err
		}
	}
	g.Central = g.Shards[0]
	g.CentralAddr = addrs[0]
	return nil
}

// shardStateSub is shard i's state subdirectory. Sharded grids journal
// under central-<i> for every shard (including 0), so a durable
// single-shard grid's plain "central" directory is never mistaken for
// shard state.
func shardStateSub(i int) string {
	return fmt.Sprintf("central-%d", i)
}

// verifyToken resolves an AppSpector bearer token against whichever
// shard issued it. Sessions are shard-local (a client logs in at its
// user's owner), so the sharded grid has to try each shard; unsharded
// grids keep the single-server fast path.
func (g *Grid) verifyToken(token string) (string, error) {
	g.mu.Lock()
	shards := append([]*central.Server(nil), g.Shards...)
	fs := g.Central
	g.mu.Unlock()
	if len(shards) == 0 {
		return fs.Auth.Verify(token)
	}
	var err error
	for _, s := range shards {
		var user string
		if user, err = s.Auth.Verify(token); err == nil {
			return user, nil
		}
	}
	return "", err
}

// centralAddrFor is the Central Server address a daemon should register
// with: its name's ring owner when sharded, else the singleton.
func (g *Grid) centralAddrFor(name string) string {
	if g.ring.Size() > 1 {
		return g.ring.OwnerServer(name)
	}
	return g.CentralAddr
}

// newCentral builds a configured Central Server; with a StateDir it
// recovers from <StateDir>/central (the crash-recovery path).
func (g *Grid) newCentral() (*central.Server, error) {
	return g.newCentralAt("central", nil, "")
}

// newCentralAt builds one Central Server journaling under
// <StateDir>/<stateSub>; a non-nil ring makes it a mesh member with the
// given self address, peered to every other ring member.
func (g *Grid) newCentralAt(stateSub string, ring *shard.Ring, selfAddr string) (*central.Server, error) {
	var fs *central.Server
	if g.opts.StateDir != "" {
		store, err := db.Open(filepath.Join(g.opts.StateDir, stateSub))
		if err != nil {
			return nil, err
		}
		store.SetGroupWindow(g.opts.WALGroupWindow)
		fs = central.NewWithDB(g.opts.Mode, store)
	} else {
		fs = central.New(g.opts.Mode)
	}
	for user, pw := range g.opts.Users {
		if err := fs.Auth.AddUser(user, pw, g.opts.Homes[user]); err != nil {
			return nil, err
		}
	}
	if g.opts.RPCTimeout > 0 {
		fs.PollTimeout = g.opts.RPCTimeout
		fs.RPCTimeout = g.opts.RPCTimeout
	}
	fs.PoolSize = g.opts.PoolSize
	fs.WireCodec = g.opts.WireCodec
	fs.MaxInflight = g.opts.MaxInflight
	fs.BreakerThreshold = g.opts.BreakerThreshold
	fs.BreakerCooldown = g.opts.BreakerCooldown
	fs.BrownoutFsync = g.opts.BrownoutFsync
	fs.BrownoutQueue = g.opts.BrownoutQueue
	fs.DefaultMechanism = g.opts.Mechanism
	if ring != nil {
		fs.Ring = ring
		fs.SelfAddr = selfAddr
		fs.GossipInterval = g.opts.GossipInterval
		var peers []string
		for _, a := range ring.Addrs() {
			if a != selfAddr {
				peers = append(peers, a)
			}
		}
		fs.SetPeers(peers)
	}
	fs.StartBrownoutMonitor(g.opts.BrownoutInterval)
	return fs, nil
}

// startDaemon builds and starts the i-th cluster's daemon; addr "" picks
// a fresh port, otherwise the daemon resumes on its previous address
// (and, with a StateDir, from its journal).
func (g *Grid) startDaemon(i int, addr string) (*daemon.Daemon, string, error) {
	cl := g.clusters[i]
	factory := cl.NewScheduler
	if factory == nil {
		factory = func(sp machine.Spec, c scheduler.Config) scheduler.Scheduler {
			return scheduler.NewEquipartition(sp, c)
		}
	}
	stateDir := ""
	if g.opts.StateDir != "" {
		stateDir = filepath.Join(g.opts.StateDir, "fd-"+cl.Spec.Name)
	}
	codec := cl.WireCodec
	if codec == "" {
		codec = g.opts.WireCodec
	}
	d, err := daemon.New(daemon.Config{
		Info:           protocol.ServerInfo{Spec: cl.Spec, Apps: cl.Apps, Home: cl.Home},
		Scheduler:      factory(cl.Spec, g.opts.SchedCfg),
		Bidder:         cl.Bidder,
		CentralAddr:    g.centralAddrFor(cl.Spec.Name),
		AppSpectorAddr: g.AppSpectorAddr,
		TimeScale:      g.opts.TimeScale,
		RPCTimeout:     g.opts.RPCTimeout,
		PoolSize:       g.opts.PoolSize,
		SettleRetry:    g.opts.SettleRetry,
		ReRegister:     g.opts.ReRegister,
		StateDir:       stateDir,
		Tracer:         g.Tracer,
		WireCodec:      codec,
	})
	if err != nil {
		return nil, "", err
	}
	dl, err := g.listen(addr)
	if err != nil {
		return nil, "", err
	}
	if cl.Chaos != nil {
		dl = cl.Chaos.WrapListener(dl)
	}
	if err := d.Start(dl); err != nil {
		dl.Close()
		return nil, "", err
	}
	return d, dl.Addr().String(), nil
}

// RestartCentral crash-stops the Central Server and boots a replacement
// on the same address from the same state directory: the database
// recovers via snapshot + WAL replay, and daemons repopulate the
// directory through their re-register heartbeat. Requires a StateDir
// (otherwise the replacement would forget every account).
func (g *Grid) RestartCentral() error {
	if g.opts.StateDir == "" {
		return fmt.Errorf("grid: RestartCentral needs Options.StateDir")
	}
	g.Central.Close()
	if err := g.Central.DB.Close(); err != nil {
		return err
	}
	fs, err := g.newCentral()
	if err != nil {
		return err
	}
	l, err := g.listen(g.CentralAddr)
	if err != nil {
		return err
	}
	g.mu.Lock()
	g.Central = fs
	g.mu.Unlock()
	go fs.Serve(l)
	if g.opts.PollInterval > 0 {
		fs.StartPolling(g.opts.PollInterval)
	}
	return nil
}

// RestartShard crash-stops one mesh shard and boots a replacement on
// the same ring address from the same state directory. The replacement
// rejoins with the identical ring (ownership never moves), its WAL
// replay restores accounting and settled history, daemons repopulate
// its directory via re-register heartbeats, and its gossip seq restarts
// at zero — peers accept that once the dead shard's last digest ages
// past the staleness window. Requires a StateDir, like RestartCentral.
func (g *Grid) RestartShard(i int) error {
	if g.opts.StateDir == "" {
		return fmt.Errorf("grid: RestartShard needs Options.StateDir")
	}
	if i < 0 || i >= len(g.Shards) {
		return fmt.Errorf("grid: no shard %d", i)
	}
	old := g.Shards[i]
	old.Close()
	if err := old.DB.Close(); err != nil {
		return err
	}
	fs, err := g.newCentralAt(shardStateSub(i), g.ring, g.ShardAddrs[i])
	if err != nil {
		return err
	}
	l, err := g.listen(g.ShardAddrs[i])
	if err != nil {
		return err
	}
	g.mu.Lock()
	g.Shards[i] = fs
	if i == 0 {
		g.Central = fs
	}
	g.mu.Unlock()
	go fs.Serve(l)
	if g.opts.PollInterval > 0 {
		fs.StartPolling(g.opts.PollInterval)
	}
	fs.StartGossip()
	return nil
}

// KillShard crash-stops one mesh shard without replacing it, for tests
// that need a window where the shard is simply gone.
func (g *Grid) KillShard(i int) error {
	if i < 0 || i >= len(g.Shards) {
		return fmt.Errorf("grid: no shard %d", i)
	}
	g.Shards[i].Close()
	return g.Shards[i].DB.Close()
}

// shardList is the set of control-plane servers to aggregate reads
// over: every mesh shard, or just the singleton Central Server.
func (g *Grid) shardList() []*central.Server {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.Shards) > 0 {
		return append([]*central.Server(nil), g.Shards...)
	}
	return []*central.Server{g.Central}
}

// HistoryLen is the grid-wide settled-contract count: the sum over all
// shards' databases (each settlement lands on exactly one shard — the
// paying user's owner — so the sum counts each contract once).
func (g *Grid) HistoryLen() int {
	n := 0
	for _, s := range g.shardList() {
		n += s.DB.HistoryLen()
	}
	return n
}

// Revenue is a Compute Server's settled revenue summed across shards.
// A server's settlements are keyed by the paying user, so on a sharded
// grid they scatter over every user-owning shard.
func (g *Grid) Revenue(server string) float64 {
	v := 0.0
	for _, s := range g.shardList() {
		v += s.DB.Revenue(server)
	}
	return v
}

// Contracts returns up to limit settled contracts per shard, merged.
// Cross-shard ordering is not meaningful; callers key by JobID.
func (g *Grid) Contracts(limit int) []db.ContractRecord {
	var out []db.ContractRecord
	for _, s := range g.shardList() {
		out = append(out, s.DB.RecentContracts(nil, limit)...)
	}
	return out
}

// RestartDaemon crash-stops the named daemon and boots a replacement on
// the same address; with a StateDir the replacement recovers its jobs
// and settlement outbox from the journal.
func (g *Grid) RestartDaemon(name string) error {
	for i, d := range g.Daemons {
		if d.Name() != name {
			continue
		}
		d.Close()
		nd, addr, err := g.startDaemon(i, g.daemonAddrs[i])
		if err != nil {
			return err
		}
		g.mu.Lock()
		g.Daemons[i] = nd
		g.daemonAddrs[i] = addr
		g.mu.Unlock()
		return nil
	}
	return fmt.Errorf("grid: no daemon named %q", name)
}

// Login opens an authenticated client session against this grid.
func (g *Grid) Login(user, password string) (*client.Client, error) {
	c, err := client.Login(g.CentralAddr, user, password)
	if err != nil {
		return nil, err
	}
	c.AppSpectorAddr = g.AppSpectorAddr
	c.Tracer = g.Tracer
	c.PoolSize = g.opts.PoolSize
	c.BidConcurrency = g.opts.BidConcurrency
	c.BidTimeout = g.opts.BidTimeout
	c.RPCTimeout = g.opts.RPCTimeout
	c.WireCodec = g.opts.WireCodec
	c.HedgeQuantile = g.opts.HedgeQuantile
	c.Mechanism = g.opts.Mechanism
	if g.opts.BreakerThreshold > 0 {
		c.Breakers = health.NewSet(health.Options{
			Threshold: g.opts.BreakerThreshold,
			Cooldown:  g.opts.BreakerCooldown,
		})
	}
	// Clients share the Central Server's registry, so the auction
	// fan-out histogram lands next to the rest of the grid's metrics.
	c.Metrics = g.Central.Metrics
	return c, nil
}

// Close shuts every component down (daemons first so their settlement
// calls still find the Central Server).
func (g *Grid) Close() {
	for _, d := range g.Daemons {
		d.Close()
	}
	if g.AppSpector != nil {
		g.AppSpector.Close()
	}
	if len(g.Shards) > 0 {
		for _, s := range g.Shards {
			s.Close()
		}
	} else if g.Central != nil {
		g.Central.Close()
	}
	g.mu.Lock()
	lns := g.metricsLns
	g.metricsLns = nil
	g.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
}
