package grid

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"faucets/internal/chaos"
	"faucets/internal/client"
	"faucets/internal/health"
	"faucets/internal/market"
	"faucets/internal/qos"
)

// soakRounds returns the measured auction count per phase; the CI
// chaos-soak job raises it via FAUCETS_SOAK_ROUNDS for a longer run.
func soakRounds() int {
	if v := os.Getenv("FAUCETS_SOAK_ROUNDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 25
}

// soakClusters builds a ten-cluster fleet of identical healthy daemons.
func soakClusters() []ClusterSpec {
	out := make([]ClusterSpec, 10)
	for i := range out {
		out[i] = ClusterSpec{
			Spec: spec(fmt.Sprintf("soak-%02d", i), 64, 0.010+0.001*float64(i)),
			Apps: []string{"synth"},
		}
	}
	return out
}

// soakAuction runs one full auction — place and start — failing the test
// on any error: a sick fleet must degrade throughput, never lose jobs.
func soakAuction(t *testing.T, cl *client.Client) {
	t.Helper()
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 8, Work: 50}
	p, err := cl.Place(c, market.LeastCost{})
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	if err := cl.Start(p); err != nil {
		t.Fatalf("start: %v", err)
	}
}

// waitSettled blocks until the grid's Central Server holds exactly n
// contract-history rows — one per job, so n proves both completeness
// (every job settled) and exactly-once (no duplicate row survived the
// outbox's redelivery loop).
func waitSettled(t *testing.T, g *Grid, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		got := g.Central.DB.HistoryLen()
		if got == n {
			return
		}
		if got > n {
			t.Fatalf("history has %d rows for %d jobs: a settlement was applied twice", got, n)
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d jobs settled", got, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosSoakSickMinority: a fleet where 20% of the daemons are gray
// failures — one slow-loris that trickles every reply byte by byte, one
// stalled daemon that accepts connections and never answers — must keep
// auction throughput at ≥70% of an all-healthy baseline once the
// client's circuit breakers learn who is sick, must settle every job
// exactly once, and must forfeit OPEN-breaker daemons instantly rather
// than paying a per-bid timeout each auction.
func TestChaosSoakSickMinority(t *testing.T) {
	rounds := soakRounds()
	opts := Options{
		Users:            map[string]string{"alice": "pw"},
		RPCTimeout:       150 * time.Millisecond,
		BidTimeout:       50 * time.Millisecond,
		SettleRetry:      25 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute, // stays open through the measured phase
		HedgeQuantile:    0.9,
		MaxInflight:      256,
	}

	// Phase 1: all-healthy baseline.
	healthy, err := Start(soakClusters(), opts)
	if err != nil {
		t.Fatal(err)
	}
	hcl, err := healthy.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // warm pooled connections + codec negotiation
		soakAuction(t, hcl)
	}
	hStart := time.Now()
	for i := 0; i < rounds; i++ {
		soakAuction(t, hcl)
	}
	healthyElapsed := time.Since(hStart)
	waitSettled(t, healthy, rounds+3)
	hcl.Close()
	healthy.Close()

	// Phase 2: two of ten daemons are sick. The trickler dribbles each
	// reply byte at 5ms; the staller swallows writes and never replies.
	clusters := soakClusters()
	last := len(clusters) - 1
	clusters[last].Chaos = chaos.New(chaos.Config{Seed: 7, TrickleProb: 1, TrickleDelay: 5 * time.Millisecond})
	clusters[last-1].Chaos = chaos.New(chaos.Config{Seed: 3, StallProb: 1})
	g, err := Start(clusters, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sickAddrs := []string{g.daemonAddrs[last-1], g.daemonAddrs[last]}
	open := func() bool {
		for _, addr := range sickAddrs {
			if cl.Breakers.State(addr) != health.Open {
				return false
			}
		}
		return true
	}
	warmup := 0
	for ; !open() && warmup < 30; warmup++ {
		soakAuction(t, cl)
	}
	if !open() {
		for _, addr := range sickAddrs {
			t.Logf("breaker %s: state=%v score=%.1f", addr, cl.Breakers.State(addr), cl.Breakers.Score(addr))
		}
		t.Fatalf("breakers never opened after %d warmup auctions", warmup)
	}

	sStart := time.Now()
	for i := 0; i < rounds; i++ {
		soakAuction(t, cl)
	}
	sickElapsed := time.Since(sStart)
	waitSettled(t, g, warmup+rounds)

	// Instant forfeit: with the breakers OPEN, sick daemons are skipped
	// before any dial, so the mean measured auction must come in well
	// under one per-bid timeout — a fleet paying 50ms per sick daemon
	// per auction cannot.
	meanAuction := sickElapsed / time.Duration(rounds)
	if meanAuction >= opts.BidTimeout {
		t.Fatalf("mean auction %v >= per-bid timeout %v: OPEN breakers are not forfeiting instantly", meanAuction, opts.BidTimeout)
	}
	skips := g.Central.Metrics.Counter("faucets_auction_breaker_skips_total", "")
	if skips.Value() == 0 {
		t.Fatal("breaker-skip counter never incremented during the measured phase")
	}

	// Sustained throughput: ≥70% of the healthy baseline.
	ratio := float64(healthyElapsed) / float64(sickElapsed)
	t.Logf("soak: rounds=%d healthy=%v sick=%v throughput-ratio=%.2f warmup=%d skips=%d",
		rounds, healthyElapsed, sickElapsed, ratio, warmup, skips.Value())
	if ratio < 0.7 {
		t.Fatalf("sick-fleet throughput is %.0f%% of healthy baseline (healthy %v, sick %v), want >= 70%%",
			ratio*100, healthyElapsed, sickElapsed)
	}
}
