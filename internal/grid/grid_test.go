package grid

import (
	"net"
	"strings"
	"testing"
	"time"

	"faucets/internal/accounting"
	"faucets/internal/client"
	"faucets/internal/machine"
	"faucets/internal/market"
	"faucets/internal/protocol"
	"faucets/internal/qos"
	"faucets/internal/scheduler"
	"faucets/internal/stage"
)

func spec(name string, pe int, cost float64) machine.Spec {
	return machine.Spec{Name: name, NumPE: pe, MemPerPE: 1024, CPUType: "x86", Speed: 1, CostRate: cost}
}

func threeClusterGrid(t *testing.T, opts Options) *Grid {
	t.Helper()
	if opts.Users == nil {
		opts.Users = map[string]string{"alice": "pw", "bob": "pw2"}
	}
	clusters := []ClusterSpec{
		{Spec: spec("turing", 64, 0.010), Apps: []string{"synth", "namd"}},
		{Spec: spec("lemieux", 128, 0.008), Apps: []string{"synth"}},
		{Spec: spec("tungsten", 32, 0.020), Apps: []string{"synth", "namd", "cfd"}},
	}
	g, err := Start(clusters, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func contract(work float64) *qos.Contract {
	return &qos.Contract{App: "synth", MinPE: 2, MaxPE: 16, Work: work}
}

// TestEndToEndGrid reproduces the paper's Figure 1 wiring as a live
// system: authenticate → list matching servers → solicit bids → award →
// upload input → start → monitor via AppSpector → download output →
// settlement at the Central Server.
func TestEndToEndGrid(t *testing.T) {
	g := threeClusterGrid(t, Options{})
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}

	// Directory filtering (Fig 2 fields: app + processor range).
	servers, err := cl.ListServers(&qos.Contract{App: "namd", MinPE: 48, MaxPE: 64, Work: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 1 || servers[0].Spec.Name != "turing" {
		t.Fatalf("filtered servers=%v", servers)
	}
	apps, err := cl.ListApps()
	if err != nil || len(apps) != 3 {
		t.Fatalf("apps=%v err=%v", apps, err)
	}

	// Full placement on the cheapest matching server.
	c := contract(300)
	p, err := cl.Place(c, market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Server.Spec.Name != "lemieux" {
		t.Fatalf("least cost chose %s, want lemieux", p.Server.Spec.Name)
	}

	input := []byte("coordinates and parameters")
	if err := cl.Upload(p, "in.dat", input); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(p); err != nil {
		t.Fatal(err)
	}
	st, err := cl.WaitFinished(p, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" {
		t.Fatalf("state=%v", st.State)
	}

	// Output files are downloadable after the run.
	out, err := cl.FetchOutput(p, "result.out")
	if err != nil || !strings.Contains(string(out), "job="+p.JobID) {
		t.Fatalf("output=%q err=%v", out, err)
	}
	// The uploaded input is still staged (the job "used" it).
	in, err := cl.FetchOutput(p, "in.dat")
	if err != nil || string(in) != string(input) {
		t.Fatalf("staged input=%q err=%v", in, err)
	}

	// Settlement reached the Central Server: revenue and history.
	deadline := time.Now().Add(10 * time.Second)
	for g.Central.DB.HistoryLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("settlement never reached the central server")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rev := g.Central.Acct.Revenue("lemieux"); rev <= 0 {
		t.Fatalf("revenue=%v", rev)
	}
}

// TestAppSpectorLiveWatch reproduces Figure 3: a client watches a
// running job's utilization and state stream, seeing it through to the
// finished state.
func TestAppSpectorLiveWatch(t *testing.T) {
	g := threeClusterGrid(t, Options{})
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cl.Place(contract(500), market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(p); err != nil {
		t.Fatal(err)
	}
	var states []string
	sawUtil := false
	err = cl.Watch(p.JobID, true, func(tm protocol.Telemetry) bool {
		states = append(states, tm.State)
		if tm.Util > 0 {
			sawUtil = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 || states[len(states)-1] != "finished" {
		t.Fatalf("states=%v", states)
	}
	if !sawUtil {
		t.Fatal("no utilization samples (the generic Fig 3 section)")
	}
}

func TestWatchRequiresAuth(t *testing.T) {
	g := threeClusterGrid(t, Options{})
	cl, _ := g.Login("alice", "pw")
	p, err := cl.Place(contract(1e6), market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	_ = cl.Start(p)
	// A fresh session with a forged token (Client holds a connection
	// pool, so it must not be copied by value).
	bad := &client.Client{
		CentralAddr:    cl.CentralAddr,
		AppSpectorAddr: cl.AppSpectorAddr,
		User:           cl.User,
		Token:          "forged",
	}
	defer bad.Close()
	err = bad.Watch(p.JobID, true, func(protocol.Telemetry) bool { return true })
	if err == nil {
		t.Fatal("forged token watched a job")
	}
}

func TestLoginFailure(t *testing.T) {
	g := threeClusterGrid(t, Options{})
	if _, err := g.Login("alice", "wrong"); err == nil {
		t.Fatal("wrong password logged in")
	}
	if _, err := g.Login("mallory", "pw"); err == nil {
		t.Fatal("unknown user logged in")
	}
}

func TestBarteringSettlementOverTheWire(t *testing.T) {
	g := threeClusterGrid(t, Options{
		Mode:  accounting.Barter,
		Users: map[string]string{"alice": "pw"},
		Homes: map[string]string{"alice": "turing"},
	})
	// Seed the home cluster with credits so off-home placement settles.
	g.Central.DB.AddCredits("turing", 1e6)
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	// Force placement on lemieux (cheapest) — off alice's home cluster.
	p, err := cl.Place(contract(300), market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Server.Spec.Name == "turing" {
		t.Skip("placement landed on home cluster; no transfer to verify")
	}
	if err := cl.Start(p); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitFinished(p, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		earned, err := cl.Credits(p.Server.Spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		if earned > 0 {
			home, _ := cl.Credits("turing")
			if home >= 1e6 {
				t.Fatalf("home balance did not decrease: %v", home)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("credits never transferred")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDaemonCrashRemovedFromDirectory(t *testing.T) {
	g := threeClusterGrid(t, Options{})
	cl, _ := g.Login("alice", "pw")
	before, _ := cl.ListServers(nil)
	if len(before) != 3 {
		t.Fatalf("directory=%d", len(before))
	}
	// Kill one daemon and poll: the FS marks it dead (§2: periodic
	// polling refreshes the availability list).
	g.Daemons[0].Close()
	g.Central.PollOnce()
	after, _ := cl.ListServers(nil)
	if len(after) != 2 {
		t.Fatalf("dead daemon still listed: %v", after)
	}
}

func TestPlacementFallsBackWhenBestRefuses(t *testing.T) {
	// The cheap cluster is tiny; a big job's bid round gets no offer
	// from it, so the award lands on a bigger machine.
	clusters := []ClusterSpec{
		{Spec: spec("tiny-cheap", 4, 0.001), Apps: []string{"synth"}},
		{Spec: spec("big-dear", 64, 0.05), Apps: []string{"synth"}},
	}
	g, err := Start(clusters, Options{Users: map[string]string{"alice": "pw"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	cl, _ := g.Login("alice", "pw")
	c := &qos.Contract{App: "synth", MinPE: 16, MaxPE: 32, Work: 100}
	p, err := cl.Place(c, market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Server.Spec.Name != "big-dear" {
		t.Fatalf("placed on %s", p.Server.Spec.Name)
	}
}

func TestFCFSGridEndToEnd(t *testing.T) {
	clusters := []ClusterSpec{{
		Spec: spec("rigid", 32, 0.01), Apps: []string{"synth"},
		NewScheduler: func(sp machine.Spec, c scheduler.Config) scheduler.Scheduler {
			return scheduler.NewFCFS(sp, c)
		},
	}}
	g, err := Start(clusters, Options{Users: map[string]string{"alice": "pw"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	cl, _ := g.Login("alice", "pw")
	p, err := cl.Place(contract(200), market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(p); err != nil {
		t.Fatal(err)
	}
	if st, err := cl.WaitFinished(p, 20*time.Second); err != nil || st.State != "finished" {
		t.Fatalf("st=%+v err=%v", st, err)
	}
}

func TestKillJobEndToEnd(t *testing.T) {
	g := threeClusterGrid(t, Options{})
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cl.Place(contract(1e8), market.LeastCost{}) // effectively endless
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(p); err != nil {
		t.Fatal(err)
	}
	// A stranger cannot kill someone else's job.
	mallory, err := g.Login("bob", "pw2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mallory.Kill(p); err == nil {
		t.Fatal("bob killed alice's job")
	}
	// The owner can.
	reply, err := cl.Kill(p)
	if err != nil {
		t.Fatal(err)
	}
	if reply.State != "killed" {
		t.Fatalf("state=%q", reply.State)
	}
	st, err := cl.Status(p)
	if err != nil || st.State != "killed" {
		t.Fatalf("status=%+v err=%v", st, err)
	}
	// Idempotent: a second kill reports the terminal state.
	again, err := cl.Kill(p)
	if err != nil || again.State != "killed" {
		t.Fatalf("second kill: %+v %v", again, err)
	}
	// The watcher stream ends with the killed state.
	sawKilled := false
	err = cl.Watch(p.JobID, true, func(tm protocol.Telemetry) bool {
		if tm.State == "killed" {
			sawKilled = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawKilled {
		t.Fatal("AppSpector never reported the kill")
	}
}

// Failure injection: a daemon dying mid-watch leaves the watcher with a
// broken stream (not a silent hang), and the dead server drops from the
// bidding pool while the survivors keep serving.
func TestDaemonDeathMidJob(t *testing.T) {
	g := threeClusterGrid(t, Options{})
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cl.Place(contract(1e8), market.LeastCost{}) // long-running
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(p); err != nil {
		t.Fatal(err)
	}
	// Kill the daemon that runs the job.
	for _, d := range g.Daemons {
		if d.Name() == p.Server.Spec.Name {
			d.Close()
		}
	}
	// Status queries now fail with a connection error.
	if _, err := cl.Status(p); err == nil {
		t.Fatal("status succeeded against a dead daemon")
	}
	// The grid still places new jobs on the surviving servers.
	g.Central.PollOnce()
	p2, err := cl.Place(contract(100), market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Server.Spec.Name == p.Server.Spec.Name {
		t.Fatal("placement chose the dead server")
	}
	if err := cl.Start(p2); err != nil {
		t.Fatal(err)
	}
	if st, err := cl.WaitFinished(p2, 20*time.Second); err != nil || st.State != "finished" {
		t.Fatalf("survivor failed: %+v %v", st, err)
	}
}

// Failure injection: an interrupted upload resumes from the reported
// offset and still verifies its digest.
func TestUploadResumeAfterOffsetError(t *testing.T) {
	g := threeClusterGrid(t, Options{})
	cl, _ := g.Login("alice", "pw")
	p, err := cl.Place(contract(1e8), market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-drive the upload protocol with a deliberate wrong offset.
	conn, err := net.Dial("tcp", p.Server.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	full := []byte("resumable payload 0123456789")
	var up protocol.UploadOK
	err = protocol.Call(conn, protocol.TypeUploadReq, protocol.UploadReq{
		JobID: p.JobID, Name: "in.dat", Offset: 0, Data: full[:10],
	}, protocol.TypeUploadOK, &up)
	if err != nil || up.Received != 10 {
		t.Fatalf("first chunk: %+v %v", up, err)
	}
	// Wrong offset (simulated retransmission confusion) is rejected.
	err = protocol.Call(conn, protocol.TypeUploadReq, protocol.UploadReq{
		JobID: p.JobID, Name: "in.dat", Offset: 5, Data: full[5:],
	}, protocol.TypeUploadOK, &up)
	if err == nil {
		t.Fatal("non-contiguous offset accepted")
	}
	// Resume from the correct offset with the final digest.
	err = protocol.Call(conn, protocol.TypeUploadReq, protocol.UploadReq{
		JobID: p.JobID, Name: "in.dat", Offset: 10, Data: full[10:], Last: true, SHA256: stage.Digest(full),
	}, protocol.TypeUploadOK, &up)
	if err != nil || up.Received != int64(len(full)) {
		t.Fatalf("resume: %+v %v", up, err)
	}
	if err := cl.Start(p); err != nil {
		t.Fatal(err)
	}
	got, err := cl.FetchOutput(p, "in.dat")
	if err != nil || string(got) != string(full) {
		t.Fatalf("staged file corrupt: %q %v", got, err)
	}
}
