package grid

import (
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"faucets/internal/bidding"
	"faucets/internal/market"
	"faucets/internal/protocol"
	"faucets/internal/qos"
)

// codecPort adapts one live daemon to market.ServerPort over an
// explicitly-configured pool, so the test can run the same auction once
// through a binary-negotiating pool and once through a JSON-pinned one.
type codecPort struct {
	name, addr, user, token string
	pool                    *protocol.Pool
}

func (p *codecPort) ServerName() string { return p.name }

func (p *codecPort) RequestBid(_ float64, c *qos.Contract) (bidding.Bid, bool) {
	var reply protocol.BidOK
	if err := p.pool.Call(p.addr, 2*time.Second, protocol.TypeBidReq,
		protocol.BidReq{User: p.user, Token: p.token, Contract: c},
		protocol.TypeBidOK, &reply); err != nil {
		return bidding.Bid{}, false
	}
	b := reply.Bid
	// EstCompletion and ExpiresAt are functions of each daemon's clock at
	// answer time; the award-relevant economics are Server, Price and
	// Multiplier, which must not depend on the wire codec.
	b.EstCompletion, b.ExpiresAt = 0, 0
	return b, b.Server != ""
}

func (p *codecPort) Commit(float64, string, bidding.Bid) error { return nil }

// negObs counts codec negotiation outcomes per version.
type negObs struct {
	negotiated [2]atomic.Int64
}

func (o *negObs) PoolConnOpen(int) {}
func (o *negObs) PoolCheckout()    {}
func (o *negObs) PoolRedial()      {}
func (o *negObs) PoolIdleReap()    {}
func (o *negObs) CodecNegotiated(version int) {
	if version >= 0 && version < len(o.negotiated) {
		o.negotiated[version].Add(1)
	}
}

// TestMixedCodecGridByteIdenticalAwards runs a grid where one daemon is
// binary-capable and one is pinned to the legacy JSON wire format, then
// proves codec transparency two ways:
//
//  1. The same auction solicited through a binary-negotiating pool and
//     through a JSON-pinned pool yields byte-identical award economics
//     ({server, price, multiplier} of every ranked bid, JSON-marshaled)
//     and the same winner.
//  2. A binary-codec client places, commits, and settles a job end to
//     end against the JSON-only daemon.
func TestMixedCodecGridByteIdenticalAwards(t *testing.T) {
	g, err := Start([]ClusterSpec{
		{Spec: spec("binfd", 64, 0.010), Apps: []string{"synth"}},
		{Spec: spec("jsonfd", 128, 0.008), Apps: []string{"synth", "legacy"}, WireCodec: "json"},
	}, Options{Users: map[string]string{"alice": "pw"}, WireCodec: "binary"})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	servers, err := cl.ListServers(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 2 {
		t.Fatalf("directory has %d servers, want 2", len(servers))
	}

	obs := &negObs{}
	binPool := &protocol.Pool{Codec: "binary", PoolObs: obs}
	defer binPool.Close()
	jsonPool := &protocol.Pool{Codec: "json"}
	defer jsonPool.Close()

	ports := func(pool *protocol.Pool) []market.ServerPort {
		out := make([]market.ServerPort, len(servers))
		for i, info := range servers {
			out[i] = &codecPort{name: info.Spec.Name, addr: info.Addr, user: "alice", token: cl.Token, pool: pool}
		}
		return out
	}

	// Solicit the identical contract through both pools before any job is
	// committed, so daemon state (and therefore pricing) is the same for
	// both auctions.
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 8, Work: 50}
	award := func(pool *protocol.Pool) []byte {
		bids := market.Solicit(0, ports(pool), c, market.LeastCost{})
		if len(bids) != 2 {
			t.Fatalf("got %d bids, want one from each daemon", len(bids))
		}
		type econ struct {
			Server     string  `json:"server"`
			Price      float64 `json:"price"`
			Multiplier float64 `json:"multiplier"`
		}
		ranked := make([]econ, len(bids))
		for i, b := range bids {
			ranked[i] = econ{Server: b.Server, Price: b.Price, Multiplier: b.Multiplier}
		}
		blob, err := json.Marshal(ranked)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	binAward := award(binPool)
	jsonAward := award(jsonPool)
	if string(binAward) != string(jsonAward) {
		t.Fatalf("awards differ across codecs:\nbinary %s\n  json %s", binAward, jsonAward)
	}

	// The binary pool must actually have negotiated both codec versions:
	// v1 with the binary daemon, v0 with the JSON-pinned one.
	if obs.negotiated[1].Load() == 0 {
		t.Fatal("binary pool never negotiated the binary codec with the binary daemon")
	}
	if obs.negotiated[0].Load() == 0 {
		t.Fatal("binary pool never fell back to JSON against the JSON-pinned daemon")
	}

	// End to end across the version gap: the "legacy" app is exported
	// only by the JSON-pinned daemon, so this placement must commit,
	// run, and settle against it through the client's binary-negotiating
	// pool.
	p, err := cl.Place(&qos.Contract{App: "legacy", MinPE: 1, MaxPE: 4, Work: 10}, market.LeastCost{})
	if err != nil {
		t.Fatalf("place against JSON-only daemon: %v", err)
	}
	if p.Server.Spec.Name != "jsonfd" {
		t.Fatalf("legacy app landed on %s, want jsonfd", p.Server.Spec.Name)
	}
	if err := cl.Start(p); err != nil {
		t.Fatalf("start on JSON-only daemon: %v", err)
	}
	if _, err := cl.WaitFinished(p, 10*time.Second); err != nil {
		t.Fatalf("job on JSON-only daemon never finished: %v", err)
	}
}

// TestPlaceBatchMixedCodecGrid drives the batched solicit path against
// the same mixed-version grid: one bid_batch_req frame per
// batch-capable daemon, per-contract awards, and a slate whose members
// land on different daemons.
func TestPlaceBatchMixedCodecGrid(t *testing.T) {
	g, err := Start([]ClusterSpec{
		{Spec: spec("binfd", 64, 0.010), Apps: []string{"synth"}},
		{Spec: spec("jsonfd", 128, 0.008), Apps: []string{"synth", "legacy"}, WireCodec: "json"},
	}, Options{Users: map[string]string{"alice": "pw"}, WireCodec: "binary"})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	slate := []*qos.Contract{
		{App: "synth", MinPE: 2, MaxPE: 8, Work: 50},
		{App: "legacy", MinPE: 1, MaxPE: 4, Work: 10},
		{App: "nosuchapp", MinPE: 1, MaxPE: 2, Work: 5},
	}
	res, err := cl.PlaceBatch(slate, market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(slate) {
		t.Fatalf("got %d results, want %d", len(res), len(slate))
	}
	if res[0].Err != nil || res[0].Placement == nil {
		t.Fatalf("synth contract failed: %v", res[0].Err)
	}
	if res[1].Err != nil || res[1].Placement == nil {
		t.Fatalf("legacy contract failed: %v", res[1].Err)
	}
	if got := res[1].Placement.Server.Spec.Name; got != "jsonfd" {
		t.Fatalf("legacy contract landed on %s, want jsonfd", got)
	}
	if res[2].Err == nil {
		t.Fatal("unknown app placed — expected a per-contract error")
	}
	// Batch failures are isolated: both placeable jobs must run.
	for i := 0; i < 2; i++ {
		if err := cl.Start(res[i].Placement); err != nil {
			t.Fatalf("start batch job %d: %v", i, err)
		}
		if _, err := cl.WaitFinished(res[i].Placement, 10*time.Second); err != nil {
			t.Fatalf("batch job %d never finished: %v", i, err)
		}
	}
}
