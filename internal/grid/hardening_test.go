package grid

import (
	"net"
	"testing"
	"time"

	"faucets/internal/market"
	"faucets/internal/protocol"
)

// hungAddr starts a listener that accepts connections and never answers
// — the pathological daemon the wire layer must tolerate.
func hungAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			t.Cleanup(func() { conn.Close() })
		}
	}()
	return l.Addr().String()
}

// TestHungDaemonsDoNotStallTheFleet: daemons that accept connections
// but never reply must not delay anyone else's liveness refresh, and
// the healthy part of the grid keeps placing, running, and settling
// jobs end to end.
func TestHungDaemonsDoNotStallTheFleet(t *testing.T) {
	g := threeClusterGrid(t, Options{RPCTimeout: 300 * time.Millisecond})
	// Four hung impostors join the directory alongside the three real
	// clusters.
	for _, name := range []string{"hung1", "hung2", "hung3", "hung4"} {
		info := protocol.ServerInfo{Spec: spec(name, 8, 0.005), Apps: []string{"synth"}, Addr: hungAddr(t)}
		if err := g.Central.RegisterDaemon(info); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	alive := g.Central.PollOnce()
	elapsed := time.Since(start)
	if alive != 3 {
		t.Fatalf("alive=%d, want the 3 real clusters", alive)
	}
	// Serialized probing would cost ≥ 4×300ms for the hung hosts alone.
	if elapsed >= 1200*time.Millisecond {
		t.Fatalf("poll took %v: hung daemons stalled the refresh", elapsed)
	}

	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	servers, err := cl.ListServers(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 3 {
		t.Fatalf("directory=%v: hung daemons still listed", servers)
	}

	// The healthy fleet still serves the full lifecycle, settlement
	// included.
	p, err := cl.Place(contract(200), market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(p); err != nil {
		t.Fatal(err)
	}
	if st, err := cl.WaitFinished(p, 20*time.Second); err != nil || st.State != "finished" {
		t.Fatalf("st=%+v err=%v", st, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for g.Central.DB.HistoryLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("settlement never landed with hung daemons present")
		}
		time.Sleep(5 * time.Millisecond)
	}
	recs := g.Central.DB.RecentContracts(nil, 1)
	if r := recs[0]; r.App != "synth" || r.MaxPE != 16 {
		t.Fatalf("settled record lost its contract shape: %+v", r)
	}
}
