package grid

import (
	"math"
	"testing"
	"time"

	"faucets/internal/market"
	"faucets/internal/qos"
)

// Pricing rules over the real wire, on the standard three-cluster
// fixture (cost rates: lemieux 0.008 < turing 0.010 < tungsten 0.020,
// baseline bidders, Work=300 ⇒ bid = 300 × rate). Least-cost always
// awards lemieux; what it is PAID depends on the mechanism.
func TestMechanismPricingOverTheWire(t *testing.T) {
	g := threeClusterGrid(t, Options{})
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}

	priceOf := func(c *qos.Contract) (string, float64) {
		t.Helper()
		p, err := cl.Place(c, market.LeastCost{})
		if err != nil {
			t.Fatal(err)
		}
		return p.Server.Spec.Name, p.Bid.Price
	}

	// First-price (the default): winner pays its own bid.
	srv, paid := priceOf(contract(300))
	if srv != "lemieux" || math.Abs(paid-2.4) > 1e-9 {
		t.Fatalf("first-price: %s paid %v, want lemieux paid 2.4", srv, paid)
	}

	// Vickrey via the per-contract override: same winner, but paid the
	// runner-up's (turing's) bid.
	c := contract(300)
	c.Mechanism = qos.MechanismVickrey
	srv, paid = priceOf(c)
	if srv != "lemieux" || math.Abs(paid-3.0) > 1e-9 {
		t.Fatalf("vickrey: %s paid %v, want lemieux paid turing's 3.0", srv, paid)
	}

	// Posted-price via the client-side default: no bid round trip, the
	// cheapest feasible post (idle fleet ⇒ list price) wins.
	cl.Mechanism = qos.MechanismPostedPrice
	srv, paid = priceOf(contract(300))
	if srv != "lemieux" || math.Abs(paid-2.4) > 1e-9 {
		t.Fatalf("posted-price: %s paid %v, want lemieux's list 2.4", srv, paid)
	}
}

// A grid default mechanism set on the Central Server reaches the
// client through the login handshake, and a posted-price placement
// settles end to end: the daemon records the clearing price the commit
// carried, and the server's revenue reflects it.
func TestGridDefaultMechanismSettlesEndToEnd(t *testing.T) {
	g := threeClusterGrid(t, Options{Mechanism: qos.MechanismPostedPrice})
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if cl.GridMechanism != qos.MechanismPostedPrice {
		t.Fatalf("login advertised mechanism %q, want posted-price", cl.GridMechanism)
	}

	p, err := cl.Place(contract(300), market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(p); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitFinished(p, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for g.Central.DB.HistoryLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("settlement never reached the central server")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rev := g.Central.Acct.Revenue(p.Server.Spec.Name); math.Abs(rev-p.Bid.Price) > 1e-9 {
		t.Fatalf("revenue %v != awarded posted price %v", rev, p.Bid.Price)
	}
}
