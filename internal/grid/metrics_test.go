package grid

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"faucets/internal/market"
	"faucets/internal/telemetry"
)

// scrape fetches one component's Prometheus exposition.
func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s: status %d", addr, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape %s: %v", addr, err)
	}
	return string(body)
}

// waitForSample polls a scrape endpoint until the selected sample reaches
// want (settlement is asynchronous: the daemon's outbox delivers it after
// the job finishes).
func waitForSample(t *testing.T, addr, selector string, want float64) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		text := scrape(t, addr)
		if v, ok := telemetry.SampleValue(text, selector); ok && v >= want {
			return text
		}
		if time.Now().After(deadline) {
			v, ok := telemetry.SampleValue(text, selector)
			t.Fatalf("%s never reached %v (last=%v found=%v)", selector, want, v, ok)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGridMetricsEndToEnd runs a real workload through the loopback grid
// and asserts the scraped numbers agree with it: every component's
// /metrics is valid exposition text with at least one counter, gauge, and
// histogram; the Central Server's settled-jobs counter matches the number
// of jobs run; and the per-RPC latency histograms saw traffic.
func TestGridMetricsEndToEnd(t *testing.T) {
	g := threeClusterGrid(t, Options{Metrics: true})
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 3
	for i := 0; i < jobs; i++ {
		p, err := cl.Place(contract(100), market.LeastCost{})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Start(p); err != nil {
			t.Fatal(err)
		}
		if st, err := cl.WaitFinished(p, 20*time.Second); err != nil || st.State != "finished" {
			t.Fatalf("job %d: st=%+v err=%v", i, st, err)
		}
	}

	// Settlement counts are exact: every finished job settles exactly once.
	central := waitForSample(t, g.MetricsAddr("central"),
		"faucets_central_jobs_settled_total", jobs)
	if v, _ := telemetry.SampleValue(central, "faucets_central_jobs_settled_total"); v != jobs {
		t.Fatalf("jobs_settled_total=%v, want exactly %d", v, jobs)
	}
	// The served-RPC histogram saw the whole conversation.
	if v, ok := telemetry.SampleValue(central, `faucets_rpc_latency_seconds_count{component="central"`); !ok || v == 0 {
		t.Fatalf("central rpc latency count=%v found=%v", v, ok)
	}

	// Daemons: admissions across the fleet equal jobs run, and each
	// daemon's outgoing-RPC histogram recorded its register + settle calls.
	var admitted, acked float64
	for _, name := range []string{"fd-turing", "fd-lemieux", "fd-tungsten"} {
		addr := g.MetricsAddr(name)
		if addr == "" {
			t.Fatalf("no metrics endpoint for %s", name)
		}
		text := scrape(t, addr)
		adm, _ := telemetry.SampleValue(text, "faucets_daemon_jobs_admitted_total")
		admitted += adm
		ack, _ := telemetry.SampleValue(text, "faucets_daemon_settlements_acked_total")
		acked += ack
		if v, ok := telemetry.SampleValue(text, `faucets_rpc_latency_seconds_count{component="daemon"`); !ok || v == 0 {
			t.Fatalf("%s rpc latency count=%v found=%v", name, v, ok)
		}
	}
	if admitted != jobs {
		t.Fatalf("fleet admitted %v jobs, want %d", admitted, jobs)
	}
	if acked != jobs {
		t.Fatalf("fleet acked %v settlements, want %d", acked, jobs)
	}

	// AppSpector ingested telemetry for every job.
	asText := scrape(t, g.MetricsAddr("appspector"))
	if v, _ := telemetry.SampleValue(asText, "faucets_appspector_samples_total"); v == 0 {
		t.Fatal("appspector ingested no samples")
	}
	if v, _ := telemetry.SampleValue(asText, "faucets_appspector_jobs"); v != jobs {
		t.Fatalf("appspector jobs gauge=%v, want %d", v, jobs)
	}

	// Every component's exposition is well-formed and carries all three
	// metric kinds.
	for _, name := range []string{"central", "appspector", "fd-turing", "fd-lemieux", "fd-tungsten"} {
		text := scrape(t, g.MetricsAddr(name))
		c, ga, h, err := telemetry.CheckExposition(text)
		if err != nil {
			t.Fatalf("%s exposition: %v", name, err)
		}
		if c < 1 || ga < 1 || h < 1 {
			t.Fatalf("%s exposition kinds: counters=%d gauges=%d histograms=%d", name, c, ga, h)
		}
	}
}

// TestJobTraceFullSpanChain runs one job to settlement and asserts the
// shared tracer holds its complete ordered lifecycle:
// submit → bid → contract → start → … → finish → settle.
func TestJobTraceFullSpanChain(t *testing.T) {
	g := threeClusterGrid(t, Options{Metrics: true})
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cl.Place(contract(200), market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(p); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitFinished(p, 20*time.Second); err != nil {
		t.Fatal(err)
	}

	// The settle span lands only after the outbox delivers and the ack
	// comes back, so poll for it.
	var names []string
	deadline := time.Now().Add(10 * time.Second)
	for {
		names = telemetry.SpanNames(g.Tracer.Events(p.JobID))
		if len(names) > 0 && names[len(names)-1] == telemetry.SpanSettle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never completed: %v", names)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Strip the optional adaptive-reallocation spans; what remains must be
	// exactly the canonical chain, in order.
	var core []string
	for _, n := range names {
		if n == telemetry.SpanShrink || n == telemetry.SpanExpand {
			continue
		}
		core = append(core, n)
	}
	want := []string{
		telemetry.SpanSubmit, telemetry.SpanBid, telemetry.SpanContract,
		telemetry.SpanStart, telemetry.SpanFinish, telemetry.SpanSettle,
	}
	if fmt.Sprint(core) != fmt.Sprint(want) {
		t.Fatalf("span chain = %v (full %v), want %v", core, names, want)
	}

	// The grid's /trace endpoints expose the same trace over HTTP.
	resp, err := http.Get("http://" + g.MetricsAddr("central") + "/trace/" + p.JobID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/%s: status %d", p.JobID, resp.StatusCode)
	}
}

// TestMetricsSurviveRestart exercises the scrape-through-restart path:
// after RestartDaemon swaps the component, the same endpoint serves the
// replacement's (fresh) registry rather than the dead daemon's.
func TestMetricsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	g := threeClusterGrid(t, Options{Metrics: true, StateDir: dir, ReRegister: 50 * time.Millisecond})
	cl, err := g.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cl.Place(contract(100), market.LeastCost{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(p); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitFinished(p, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	name := "fd-" + p.Server.Spec.Name
	waitForSample(t, g.MetricsAddr(name), "faucets_daemon_jobs_finished_total", 1)

	if err := g.RestartDaemon(p.Server.Spec.Name); err != nil {
		t.Fatal(err)
	}
	// The endpoint survives and serves the replacement's registry: the
	// finished-jobs counter is back to zero (in-memory metrics are not
	// journaled), and the exposition is still well-formed.
	text := scrape(t, g.MetricsAddr(name))
	if _, _, _, err := telemetry.CheckExposition(text); err != nil {
		t.Fatalf("post-restart exposition: %v", err)
	}
	if v, ok := telemetry.SampleValue(text, "faucets_daemon_jobs_finished_total"); !ok || v != 0 {
		t.Fatalf("post-restart finished counter=%v found=%v, want fresh 0", v, ok)
	}
}
