package grid

import (
	"fmt"
	"testing"
	"time"

	"faucets/internal/chaos"
	"faucets/internal/client"
	"faucets/internal/market"
)

// chaosInjector returns the fixed fault schedule used by the crash
// tests: occasional severed connections, frequent small delays, rare
// torn frames. The fixed seed makes failures reproducible.
func chaosInjector() *chaos.Injector {
	return chaos.New(chaos.Config{
		Seed:        7,
		DropProb:    0.02,
		DelayProb:   0.10,
		MaxDelay:    2 * time.Millisecond,
		PartialProb: 0.01,
	})
}

// retryUntil keeps calling fn until it succeeds or the deadline passes.
func retryUntil(t *testing.T, what string, timeout time.Duration, fn func() error) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var err error
	for {
		if err = fn(); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %v", what, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// settlementTally counts history records per job ID and sums revenue.
func settlementTally(g *Grid, jobIDs []string) (perJob map[string]int, revenue float64) {
	perJob = map[string]int{}
	for _, r := range g.Central.DB.RecentContracts(nil, 10_000) {
		perJob[r.JobID]++
	}
	for _, cl := range g.clusters {
		revenue += g.Central.Acct.Revenue(cl.Spec.Name)
	}
	return perJob, revenue
}

// runChaosWorkload boots a durable two-cluster grid behind the fault
// injector, submits four jobs, optionally crash-restarts both a daemon
// and the Central Server mid-workload (with a partition over the
// restart window), and waits for every job to settle. It returns the
// per-job settlement counts and the total revenue.
//
// The two clusters are deliberately identical in Speed and CostRate:
// the baseline bid price depends only on the contract and those two
// numbers, so total revenue must come out the same whether or not the
// grid crashed — the comparison the caller makes.
func runChaosWorkload(t *testing.T, crash bool) (map[string]int, float64) {
	t.Helper()
	in := chaosInjector()
	clusters := []ClusterSpec{
		{Spec: spec("turing", 64, 0.01), Apps: []string{"synth"}},
		{Spec: spec("lemieux", 64, 0.01), Apps: []string{"synth"}},
	}
	g, err := Start(clusters, Options{
		Users:       map[string]string{"alice": "pw"},
		StateDir:    t.TempDir(),
		Chaos:       in,
		RPCTimeout:  500 * time.Millisecond,
		SettleRetry: 20 * time.Millisecond,
		ReRegister:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	var cl *client.Client
	retryUntil(t, "login", 10*time.Second, func() error {
		var err error
		cl, err = g.Login("alice", "pw")
		return err
	})

	// Submit four jobs. Every wire step can be severed by the injector;
	// commit and submit are idempotent per (job, user), so retrying a
	// lost ack is safe. A Place whose award never completed is retried
	// wholesale under a fresh job ID — the orphaned reservation never
	// runs and never settles.
	var jobIDs []string
	firstServer := ""
	for i := 0; i < 4; i++ {
		var p *client.Placement
		retryUntil(t, fmt.Sprintf("place job %d", i), 20*time.Second, func() error {
			var err error
			p, err = cl.Place(contract(2000), market.LeastCost{})
			return err
		})
		retryUntil(t, fmt.Sprintf("start job %d", i), 20*time.Second, func() error {
			return cl.Start(p)
		})
		jobIDs = append(jobIDs, p.JobID)
		if firstServer == "" {
			firstServer = p.Server.Spec.Name
		}
	}

	if crash {
		// Let the jobs get partway through (~125 virtual seconds each at
		// timescale 1000), then take down the executing daemon and the
		// Central Server inside a network partition — the worst window:
		// finished jobs may hold unacknowledged settlements.
		time.Sleep(60 * time.Millisecond)
		in.Partition(true)
		if err := g.RestartDaemon(firstServer); err != nil {
			t.Fatalf("restart daemon: %v", err)
		}
		if err := g.RestartCentral(); err != nil {
			t.Fatalf("restart central: %v", err)
		}
		in.Partition(false)
	}

	// Settlement completion is judged at the Central Server's database —
	// client Status calls are useless across a daemon restart window.
	deadline := time.Now().Add(60 * time.Second)
	for {
		perJob, _ := settlementTally(g, jobIDs)
		done := 0
		for _, id := range jobIDs {
			if perJob[id] >= 1 {
				done++
			}
		}
		if done == len(jobIDs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs settled: %v", done, len(jobIDs), perJob)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Let any straggling redeliveries land before counting duplicates.
	time.Sleep(100 * time.Millisecond)
	perJob, revenue := settlementTally(g, jobIDs)
	return perJob, revenue
}

// TestChaosCrashRecoveryExactlyOnce is the acceptance test for the
// durability layer: a workload that loses both a Faucets Daemon and the
// Central Server mid-flight — under seeded network chaos, with a
// partition across the restart window — must finish with zero lost
// jobs, zero lost or double-applied settlements, and the same total
// revenue as the run where nothing crashed.
func TestChaosCrashRecoveryExactlyOnce(t *testing.T) {
	baselineJobs, baselineRevenue := runChaosWorkload(t, false)
	crashJobs, crashRevenue := runChaosWorkload(t, true)

	for id, n := range baselineJobs {
		if n != 1 {
			t.Errorf("no-crash run: job %s settled %d times", id, n)
		}
	}
	for id, n := range crashJobs {
		if n != 1 {
			t.Errorf("crash run: job %s settled %d times", id, n)
		}
	}
	if len(crashJobs) != len(baselineJobs) {
		t.Errorf("settled job count: crash=%d baseline=%d", len(crashJobs), len(baselineJobs))
	}
	if crashRevenue != baselineRevenue {
		t.Errorf("revenue diverged: crash=%v baseline=%v", crashRevenue, baselineRevenue)
	}
	if baselineRevenue == 0 {
		t.Error("workload produced no revenue at all")
	}
}

// TestChaosDaemonRestartAlone: the narrower invariant — losing only the
// executing daemon mid-job still yields exactly-once settlement for
// every job, because the journal restarts the lost jobs and the Central
// Server deduplicates redelivered settlements by job ID.
func TestChaosDaemonRestartAlone(t *testing.T) {
	in := chaosInjector()
	clusters := []ClusterSpec{
		{Spec: spec("turing", 64, 0.01), Apps: []string{"synth"}},
	}
	g, err := Start(clusters, Options{
		Users:       map[string]string{"alice": "pw"},
		StateDir:    t.TempDir(),
		Chaos:       in,
		RPCTimeout:  500 * time.Millisecond,
		SettleRetry: 20 * time.Millisecond,
		ReRegister:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	var cl *client.Client
	retryUntil(t, "login", 10*time.Second, func() error {
		var err error
		cl, err = g.Login("alice", "pw")
		return err
	})
	var p *client.Placement
	retryUntil(t, "place", 20*time.Second, func() error {
		var err error
		p, err = cl.Place(contract(2000), market.LeastCost{})
		return err
	})
	retryUntil(t, "start", 20*time.Second, func() error { return cl.Start(p) })

	time.Sleep(30 * time.Millisecond)
	if err := g.RestartDaemon("turing"); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		perJob, _ := settlementTally(g, []string{p.JobID})
		if perJob[p.JobID] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never settled after daemon restart", p.JobID)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	perJob, _ := settlementTally(g, []string{p.JobID})
	if perJob[p.JobID] != 1 {
		t.Fatalf("job settled %d times, want exactly once", perJob[p.JobID])
	}
}
