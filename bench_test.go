package faucets_test

// The benchmark harness regenerates every experiment in EXPERIMENTS.md
// (the paper publishes no quantitative tables, so each falsifiable claim
// in its text is an experiment — see DESIGN.md §4). Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkE* executes the full experiment per iteration and
// reports its headline quantities as custom metrics, so the bench output
// itself is a compact reproduction record. Micro-benchmarks at the
// bottom cover the engine hot paths.

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"net"

	"faucets/internal/accounting"
	"faucets/internal/bidding"
	"faucets/internal/central"
	"faucets/internal/daemon"
	"faucets/internal/db"
	"faucets/internal/experiments"
	"faucets/internal/gantt"
	"faucets/internal/grid"
	"faucets/internal/health"
	"faucets/internal/machine"
	"faucets/internal/market"
	"faucets/internal/protocol"
	"faucets/internal/qos"
	"faucets/internal/scheduler"
	"faucets/internal/shard"
	"faucets/internal/sim"
	"faucets/internal/telemetry"
	"faucets/internal/workload"

	"faucets/internal/job"
)

const benchSeed = 42

// reportTable attaches selected table cells as benchmark metrics.
func reportTable(b *testing.B, t *experiments.Table, cells map[string][2]string) {
	for metric, cell := range cells {
		if v, ok := t.Get(cell[0], cell[1]); ok {
			b.ReportMetric(v, metric)
		}
	}
}

func BenchmarkE1InternalFragmentation(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E1InternalFragmentation(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"fcfs_A_wait_s":     {"fcfs", "A_wait_s"},
		"adaptive_A_wait_s": {"equipartition latency=0s", "A_wait_s"},
	})
}

func BenchmarkE2ExternalFragmentation(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E2ExternalFragmentation(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"locked_resp_s": {"locked-to-one", "mean_resp_s"},
		"open_resp_s":   {"open-market", "mean_resp_s"},
	})
}

func BenchmarkE3AdaptiveVsRigid(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E3AdaptiveVsRigid(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"fcfs_resp_hot_s": {"fcfs gap=5s", "mean_resp_s"},
		"equi_resp_hot_s": {"equipartition gap=5s", "mean_resp_s"},
		"equi_util_hot":   {"equipartition gap=5s", "utilization"},
		"fcfs_util_hot":   {"fcfs gap=5s", "utilization"},
	})
}

func BenchmarkE4BidStrategies(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E4BidStrategies(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"baseline_revenue": {"all-baseline", "revenue"},
		"util_revenue":     {"all-utilization", "revenue"},
		"util_multiplier":  {"all-utilization", "mean_multiplier"},
	})
}

func BenchmarkE5PayoffAdmission(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E5PayoffAdmission(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"acceptall_payoff": {"fcfs accept-all", "total_payoff"},
		"profit_payoff":    {"profit lookahead=600s", "total_payoff"},
		"profit_rejected":  {"profit lookahead=600s", "rejected"},
	})
}

func BenchmarkE6Bartering(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E6Bartering(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"noshare_resp_s": {"no-sharing", "mean_resp_s"},
		"barter_resp_s":  {"bartering", "mean_resp_s"},
		"helper_credits": {"bartering", "helper_credits"},
	})
}

func BenchmarkE7BidScalability(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E7BidScalability(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"n1000_broadcast_msgs": {"n=1000 broadcast", "bid_messages"},
		"n1000_filtered_msgs":  {"n=1000 filtered", "bid_messages"},
	})
}

func BenchmarkE8TwoPhaseCommit(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E8TwoPhaseCommit(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"twophase_placed":    {"two-phase", "placed"},
		"singlephase_placed": {"single-phase", "placed"},
	})
}

// --- Micro-benchmarks: engine hot paths ---

func BenchmarkSimEngineEventChurn(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, "tick", func(*sim.Engine) {})
		e.Step()
	}
}

func BenchmarkSimEngineHeap1k(b *testing.B) {
	// Maintain a 1000-event horizon and churn through it.
	e := sim.NewEngine()
	rng := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		e.After(sim.Duration(rng.Range(0, 100)), "seed", func(en *sim.Engine) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(sim.Duration(rng.Range(0, 100)), "churn", func(*sim.Engine) {})
		e.Step()
	}
}

func BenchmarkProtocolFrameRoundTrip(b *testing.B) {
	body := protocol.Telemetry{JobID: "job-123", Time: 42.5, PEs: 64, Util: 0.93, Done: 0.5, State: "running"}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := protocol.WriteFrame(&buf, protocol.TypeTelemetry, body); err != nil {
			b.Fatal(err)
		}
		f, err := protocol.ReadFrame(&buf)
		if err != nil {
			b.Fatal(err)
		}
		var out protocol.Telemetry
		if err := protocol.Decode(f, protocol.TypeTelemetry, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// solicitEncodeBody is the request every auction fan-out sends once per
// candidate server — the hottest encode in the system.
func solicitEncodeBody() protocol.BidReq {
	return protocol.BidReq{
		User:  "alice",
		Token: "tok-0123456789abcdef",
		Contract: &qos.Contract{
			App: "synth", MinPE: 2, MaxPE: 16, Work: 100,
			Payoff: qos.Payoff{Soft: 300, Hard: 600, AtSoft: 10, AtHard: 2, Penalty: 1},
			Phases: []qos.Phase{
				{Name: "setup", Work: 10, MinPE: 1, MaxPE: 4},
				{Name: "solve", Work: 90, MinPE: 2, MaxPE: 16},
			},
		},
	}
}

// BenchmarkSolicitEncodeBinary measures the binary wire encoding of one
// solicit (bid request) frame into a reused buffer. This is the path
// BENCH_BASELINE.json gates at ≤8 allocs/op via benchgate -allocs; the
// hand-rolled encoder is expected to be allocation-free once the buffer
// has grown to frame size.
func BenchmarkSolicitEncodeBinary(b *testing.B) {
	body := solicitEncodeBody()
	buf := make([]byte, 0, 1024)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := protocol.AppendFrame(buf[:0], protocol.CodecBinary, uint64(i)+1, protocol.TypeBidReq, body)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty frame")
		}
	}
}

// BenchmarkSolicitEncodeJSON is the same frame through the legacy JSON
// codec — the comparison that justifies the binary hot path.
func BenchmarkSolicitEncodeJSON(b *testing.B) {
	body := solicitEncodeBody()
	buf := make([]byte, 0, 1024)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := protocol.AppendFrame(buf[:0], protocol.CodecJSON, uint64(i)+1, protocol.TypeBidReq, body)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty frame")
		}
	}
}

func BenchmarkAllocatorAllocRelease(b *testing.B) {
	al := machine.NewAllocator(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := al.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		al.Release(a)
	}
}

func BenchmarkEquipartitionSubmitFinish(b *testing.B) {
	spec := machine.Spec{Name: "m", NumPE: 256, MemPerPE: 2048, Speed: 1, CostRate: 0.01}
	s := scheduler.NewEquipartition(spec, scheduler.Config{})
	now := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := &qos.Contract{App: "p", MinPE: 2, MaxPE: 32, Work: 100}
		j := job.New(job.ID(fmt.Sprintf("j%d", i)), "u", c, now)
		s.Submit(now, j)
		now += 1
		s.Advance(now)
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	spec := workload.Default(benchSeed, 1000, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX1Preemption(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.X1Preemption(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"nopreempt_urgent_met": {"profit no-preempt", "urgent_met"},
		"preempt_urgent_met":   {"profit preempt", "urgent_met"},
		"preempt_checkpoints":  {"profit preempt", "checkpoints"},
	})
}

func BenchmarkX2GridWeather(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.X2GridWeather(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"weather_revenue": {"weather", "revenue"},
		"util_revenue":    {"utilization", "revenue"},
	})
}

func BenchmarkGanttFindWindow(b *testing.B) {
	c := gantt.NewChart(1024)
	rng := sim.NewRNG(3)
	for i := 0; i < 200; i++ {
		start := rng.Range(0, 1000)
		_, _ = c.Reserve(start, start+rng.Range(10, 100), 1+rng.Intn(512))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.FindWindow(rng.Range(0, 1000), 50, 256, 0)
	}
}

// BenchmarkLiveBidRoundTrip measures the real wire path: client →
// Faucets Daemon bid request over loopback TCP, including the daemon's
// scheduler estimate and bid generation.
func BenchmarkLiveBidRoundTrip(b *testing.B) {
	spec := machine.Spec{Name: "bench", NumPE: 64, MemPerPE: 2048, CPUType: "x86", Speed: 1, CostRate: 0.01}
	d, err := daemon.New(daemon.Config{
		Info:      protocol.ServerInfo{Spec: spec, Apps: []string{"synth"}},
		Scheduler: scheduler.NewEquipartition(spec, scheduler.Config{}),
		TimeScale: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Start(l); err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 16, Work: 100}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var reply protocol.BidOK
		if err := protocol.Call(conn, protocol.TypeBidReq, protocol.BidReq{User: "u", Contract: c}, protocol.TypeBidOK, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryHotPath measures the instrumented fast path every
// daemon tick and RPC dispatch pays: a counter increment, a gauge store,
// and a histogram observation on pre-resolved instruments. All three
// must be allocation-free — scrapes format text, updates never do.
func BenchmarkTelemetryHotPath(b *testing.B) {
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("faucets_bench_ops_total", "bench")
	gau := reg.Gauge("faucets_bench_depth", "bench")
	his := reg.Histogram("faucets_bench_latency_seconds", "bench", nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctr.Inc()
		gau.Set(float64(i))
		his.Observe(float64(i%1000) * 0.0001)
	}
}

// BenchmarkTelemetryTraceRecord measures one span append on a warm job
// trace — the per-lifecycle-event cost inside the daemons.
func BenchmarkTelemetryTraceRecord(b *testing.B) {
	tr := telemetry.NewTracer(8)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record("job-bench", telemetry.SpanStart, "")
	}
}

// --- RPC transport benchmarks: per-call dial vs pooled connections ---

// startBenchDaemon boots a bid-serving daemon on loopback for the
// transport and fan-out benchmarks.
func startBenchDaemon(b *testing.B, name string) string {
	b.Helper()
	spec := machine.Spec{Name: name, NumPE: 64, MemPerPE: 2048, CPUType: "x86", Speed: 1, CostRate: 0.01}
	d, err := daemon.New(daemon.Config{
		Info:      protocol.ServerInfo{Spec: spec, Apps: []string{"synth"}},
		Scheduler: scheduler.NewEquipartition(spec, scheduler.Config{}),
		TimeScale: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Start(l); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	return l.Addr().String()
}

// BenchmarkRPCDialPerCall measures the historical transport: every bid
// request pays a fresh TCP dial, one exchange, and a close.
func BenchmarkRPCDialPerCall(b *testing.B) {
	addr := startBenchDaemon(b, "bench")
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 16, Work: 100}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var reply protocol.BidOK
		if err := protocol.DialCall(addr, 0, protocol.TypeBidReq, protocol.BidReq{User: "u", Contract: c}, protocol.TypeBidOK, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCPooled measures the same exchange over a connection pool:
// the dial is amortized across calls and replies are demultiplexed by
// frame ID. The CI bench artifact pairs this with BenchmarkRPCDialPerCall
// to keep the pooling win visible (it must stay well above 2x).
func BenchmarkRPCPooled(b *testing.B) {
	addr := startBenchDaemon(b, "bench")
	p := &protocol.Pool{}
	defer p.Close()
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 16, Work: 100}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var reply protocol.BidOK
		if err := p.Call(addr, 0, protocol.TypeBidReq, protocol.BidReq{User: "u", Contract: c}, protocol.TypeBidOK, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSustainedAuctions is the end-to-end number the CI bench
// gate guards: full §5 auctions (directory filter → request-for-bids →
// two-phase award) per second against a live two-cluster loopback grid,
// everything riding pooled connections. A regression here means the
// wire layer, the market round, or the daemons' bid path got slower.
func BenchmarkGridSustainedAuctions(b *testing.B) {
	g, err := grid.Start([]grid.ClusterSpec{
		{Spec: machine.Spec{Name: "turing", NumPE: 64, MemPerPE: 1024, CPUType: "x86", Speed: 1, CostRate: 0.010}, Apps: []string{"synth"}},
		{Spec: machine.Spec{Name: "lemieux", NumPE: 128, MemPerPE: 1024, CPUType: "x86", Speed: 1, CostRate: 0.008}, Apps: []string{"synth"}},
	}, grid.Options{Users: map[string]string{"alice": "pw"}})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	cl, err := g.Login("alice", "pw")
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 8, Work: 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Place(c, market.LeastCost{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "auctions/s")
}

// --- Auction fan-out benchmarks: parallel vs serial request-for-bids ---

// benchBidPort adapts a live daemon address to market.ServerPort over a
// pooled connection — the same shape the client's fan-out uses.
type benchBidPort struct {
	name string
	addr string
	pool *protocol.Pool
}

func (p *benchBidPort) ServerName() string { return p.name }

func (p *benchBidPort) RequestBid(_ float64, c *qos.Contract) (bidding.Bid, bool) {
	var reply protocol.BidOK
	if err := p.pool.Call(p.addr, 2*time.Second, protocol.TypeBidReq,
		protocol.BidReq{User: "u", Contract: c}, protocol.TypeBidOK, &reply); err != nil {
		return bidding.Bid{}, false
	}
	return reply.Bid, reply.Bid.Server != ""
}

func (p *benchBidPort) Commit(float64, string, bidding.Bid) error { return nil }

// startSlowBidStub serves bids only after a fixed delay — the hung
// daemon every fan-out auction must tolerate.
func startSlowBidStub(b *testing.B, name string, delay time.Duration) string {
	b.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				rc := protocol.NewReplyConn(conn)
				var wmu sync.Mutex // serializes ID-stamped reply writes
				for {
					f, err := protocol.ReadFrame(conn)
					if err != nil {
						return
					}
					// Answer on a separate goroutine so forfeited (timed-out)
					// requests from earlier rounds cannot queue up behind this
					// round's delay.
					go func(id uint64) {
						time.Sleep(delay)
						wmu.Lock()
						defer wmu.Unlock()
						rc.SetID(id)
						_ = protocol.WriteFrame(rc, protocol.TypeBidOK, protocol.BidOK{
							Bid: bidding.Bid{Server: name, Price: 0.001, EstCompletion: 1},
						})
					}(f.ID)
				}
			}()
		}
	}()
	return l.Addr().String()
}

// benchFanoutPorts builds the ISSUE's reference auction: 12 live
// Faucets Daemons plus one seeded slow bidder (10ms before it answers).
func benchFanoutPorts(b *testing.B) []market.ServerPort {
	b.Helper()
	pool := &protocol.Pool{}
	b.Cleanup(func() { pool.Close() })
	var ports []market.ServerPort
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("bench-%02d", i)
		ports = append(ports, &benchBidPort{name: name, addr: startBenchDaemon(b, name), pool: pool})
	}
	ports = append(ports, &benchBidPort{
		name: "zz-slow", addr: startSlowBidStub(b, "zz-slow", 10*time.Millisecond), pool: pool,
	})
	return ports
}

// BenchmarkAuctionFanout measures one full request-for-bids round over
// the parallel fan-out: 12 live daemons answer concurrently and the
// seeded slow bidder forfeits at the 2ms per-bid deadline instead of
// stalling the auction. Pair with BenchmarkAuctionFanoutSerial — the
// ratio is the headline win and must stay ≥3x.
func BenchmarkAuctionFanout(b *testing.B) {
	ports := benchFanoutPorts(b)
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 16, Work: 100}
	opts := market.SolicitOpts{Concurrency: 16, Timeout: 2 * time.Millisecond}
	market.SolicitSerial(0, ports, c, market.LeastCost{}) // warm the connection pool
	// One probe round outside the timer: the slow bidder must forfeit and
	// a quorum must remain. (Inside the timed loop the counts depend on
	// runner load, so asserting them there makes the benchmark flaky —
	// the determinism properties are unit-tested in internal/market.)
	probe := market.SolicitWith(0, ports, c, market.LeastCost{}, opts)
	if len(probe) < 8 {
		b.Fatalf("probe bids=%d, want most of the 12 fast daemons", len(probe))
	}
	for _, bid := range probe {
		if bid.Server == "zz-slow" {
			b.Fatal("slow bidder answered inside the per-bid deadline")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		market.SolicitWith(0, ports, c, market.LeastCost{}, opts)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "auctions/s")
}

// BenchmarkAuctionFanoutSerial is the historical one-at-a-time walk over
// the identical fleet: every round pays the sum of all round trips plus
// the slow bidder's full 10ms answer time.
func BenchmarkAuctionFanoutSerial(b *testing.B) {
	ports := benchFanoutPorts(b)
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 16, Work: 100}
	market.SolicitSerial(0, ports, c, market.LeastCost{}) // warm the connection pool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bids := market.SolicitSerial(0, ports, c, market.LeastCost{}); len(bids) != 13 {
			b.Fatalf("bids=%d, want 13 (serial waits the slow bidder out)", len(bids))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "auctions/s")
}

// memBidPort answers bids in-process with a fixed price — no network,
// so BenchmarkSolicitWithBreakers measures only the fan-out machinery
// and its breaker gate, with a deterministic allocation profile the CI
// gate can hold to an absolute ceiling.
type memBidPort struct {
	name  string
	price float64
}

func (p *memBidPort) ServerName() string { return p.name }
func (p *memBidPort) RequestBid(_ float64, _ *qos.Contract) (bidding.Bid, bool) {
	return bidding.Bid{Server: p.name, Price: p.price, EstCompletion: 1}, true
}
func (p *memBidPort) Commit(float64, string, bidding.Bid) error { return nil }

// BenchmarkSolicitWithBreakers is the breaker-gate overhead number: a
// 13-daemon fan-out where every circuit breaker is CLOSED, so the gate
// is pure bookkeeping on the hot path and must stay within an absolute
// allocation ceiling (CI -allocs gate). An OPEN breaker makes auctions
// cheaper, not slower — the expensive failure mode is a gate that taxes
// the all-healthy common case.
func BenchmarkSolicitWithBreakers(b *testing.B) {
	set := health.NewSet(health.Options{})
	ports := make([]market.ServerPort, 13)
	for i := range ports {
		ports[i] = &memBidPort{name: fmt.Sprintf("bench-%02d", i), price: 0.001 * float64(i+1)}
	}
	for _, p := range ports { // every breaker has history and is CLOSED
		set.Record(p.ServerName(), time.Millisecond, nil)
	}
	opts := market.SolicitOpts{
		Concurrency: 16,
		Gate:        func(s market.ServerPort) bool { return set.Healthy(s.ServerName()) },
	}
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 16, Work: 100}
	if bids := market.SolicitWith(0, ports, c, market.LeastCost{}, opts); len(bids) != 13 {
		b.Fatalf("bids=%d, want 13 with every breaker closed", len(bids))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		market.SolicitWith(0, ports, c, market.LeastCost{}, opts)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "auctions/s")
}

// --- Sharded control-plane benchmarks ---

// startBenchShardMesh boots n in-process Central Server shards over a
// consistent-hash ring, each journaling settlements to its own durable
// WAL. No listeners: every operation is routed in-process to the owning
// shard, exactly the path a ring-aware client takes after its first
// NOT_OWNER redirect, so the benchmark isolates the control plane's
// serialized cost (the per-shard settle lock and WAL commit) from wire
// transport.
func startBenchShardMesh(b *testing.B, n int) (*shard.Ring, map[string]*central.Server) {
	b.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		// Ring positions only — never dialed.
		addrs[i] = fmt.Sprintf("10.255.0.%d:9", i+1)
	}
	ring := shard.New(addrs)
	byAddr := make(map[string]*central.Server, n)
	for _, addr := range addrs {
		store, err := db.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		s := central.NewWithDB(accounting.Dollars, store)
		s.Ring = ring // a 1-member ring is deliberately unsharded (the baseline)
		s.SelfAddr = addr
		b.Cleanup(func() { s.Close(); store.Close() })
		byAddr[addr] = s
	}
	// Seed the directory the way daemon registration would land it:
	// each name on its owning shard.
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("bench-%02d", i)
		spec := machine.Spec{Name: name, NumPE: 64, MemPerPE: 1024, CPUType: "x86", Speed: 1, CostRate: 0.01}
		owner := byAddr[ring.OwnerServer(name)]
		if err := owner.RegisterDaemon(protocol.ServerInfo{Spec: spec, Apps: []string{"synth"}}); err != nil {
			b.Fatal(err)
		}
	}
	return ring, byAddr
}

// BenchmarkShardedAuctionThroughput is the tentpole scaling number: the
// per-auction control-plane cost (directory read + durable settlement)
// against a 1-, 2-, and 4-shard Central Server mesh, with users spread
// across the ring and every request routed to its owning shard. Each
// shard serializes its settlements behind its own lock and WAL, so
// throughput should scale ~linearly with shard count — CI enforces
// ≥2.5x at 4 shards via benchgate -scale.
func BenchmarkShardedAuctionThroughput(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards_%d", n), func(b *testing.B) {
			ring, byAddr := startBenchShardMesh(b, n)
			// Bucket a user population by owning shard so workers can be
			// dealt round-robin across shards: with thousands of real
			// users the ring's load is even by the law of large numbers,
			// and the deal reproduces that balance with few workers.
			buckets := make(map[string][]string)
			for i := 0; i < 256; i++ {
				u := fmt.Sprintf("u%03d", i)
				owner := ring.OwnerUser(u)
				buckets[owner] = append(buckets[owner], u)
			}
			addrs := ring.Addrs()
			// Each worker is one user's client: after the first
			// NOT_OWNER redirect a real client sticks to its home
			// shard, so the load arrives as per-shard streams, not a
			// per-request scatter. Workers are oversubscribed so every
			// shard's settle queue stays non-empty.
			b.SetParallelism(16)
			var workers, jobs atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(workers.Add(1)) - 1
				home := addrs[w%len(addrs)]
				user := buckets[home][(w/len(addrs))%len(buckets[home])]
				s := byAddr[home]
				for pb.Next() {
					err := s.Settle(protocol.SettleReq{
						JobID: fmt.Sprintf("bench-%d", jobs.Add(1)), User: user,
						App: "synth", Server: "bench-00", MinPE: 2, MaxPE: 8,
						Price: 0.001, CPUSeconds: 1, HomeCluster: "home",
					})
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "auctions/s")
		})
	}
}

// BenchmarkWALGroupCommit measures durable mutations under contention:
// every parallel worker's record must be fsync'd before its call
// returns, so the ns/op is the per-record share of a group fsync. The
// CI gate guards it with a loose tolerance (fsync times vary across
// runners) to catch a regression to one-fsync-per-record.
func BenchmarkWALGroupCommit(b *testing.B) {
	store, err := db.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			store.AddCredits("bench", 1)
		}
	})
}
