package faucets_test

// The benchmark harness regenerates every experiment in EXPERIMENTS.md
// (the paper publishes no quantitative tables, so each falsifiable claim
// in its text is an experiment — see DESIGN.md §4). Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkE* executes the full experiment per iteration and
// reports its headline quantities as custom metrics, so the bench output
// itself is a compact reproduction record. Micro-benchmarks at the
// bottom cover the engine hot paths.

import (
	"bytes"
	"fmt"
	"testing"

	"net"

	"faucets/internal/daemon"
	"faucets/internal/experiments"
	"faucets/internal/gantt"
	"faucets/internal/grid"
	"faucets/internal/machine"
	"faucets/internal/market"
	"faucets/internal/protocol"
	"faucets/internal/qos"
	"faucets/internal/scheduler"
	"faucets/internal/sim"
	"faucets/internal/telemetry"
	"faucets/internal/workload"

	"faucets/internal/job"
)

const benchSeed = 42

// reportTable attaches selected table cells as benchmark metrics.
func reportTable(b *testing.B, t *experiments.Table, cells map[string][2]string) {
	for metric, cell := range cells {
		if v, ok := t.Get(cell[0], cell[1]); ok {
			b.ReportMetric(v, metric)
		}
	}
}

func BenchmarkE1InternalFragmentation(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E1InternalFragmentation(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"fcfs_A_wait_s":     {"fcfs", "A_wait_s"},
		"adaptive_A_wait_s": {"equipartition latency=0s", "A_wait_s"},
	})
}

func BenchmarkE2ExternalFragmentation(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E2ExternalFragmentation(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"locked_resp_s": {"locked-to-one", "mean_resp_s"},
		"open_resp_s":   {"open-market", "mean_resp_s"},
	})
}

func BenchmarkE3AdaptiveVsRigid(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E3AdaptiveVsRigid(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"fcfs_resp_hot_s": {"fcfs gap=5s", "mean_resp_s"},
		"equi_resp_hot_s": {"equipartition gap=5s", "mean_resp_s"},
		"equi_util_hot":   {"equipartition gap=5s", "utilization"},
		"fcfs_util_hot":   {"fcfs gap=5s", "utilization"},
	})
}

func BenchmarkE4BidStrategies(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E4BidStrategies(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"baseline_revenue": {"all-baseline", "revenue"},
		"util_revenue":     {"all-utilization", "revenue"},
		"util_multiplier":  {"all-utilization", "mean_multiplier"},
	})
}

func BenchmarkE5PayoffAdmission(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E5PayoffAdmission(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"acceptall_payoff": {"fcfs accept-all", "total_payoff"},
		"profit_payoff":    {"profit lookahead=600s", "total_payoff"},
		"profit_rejected":  {"profit lookahead=600s", "rejected"},
	})
}

func BenchmarkE6Bartering(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E6Bartering(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"noshare_resp_s": {"no-sharing", "mean_resp_s"},
		"barter_resp_s":  {"bartering", "mean_resp_s"},
		"helper_credits": {"bartering", "helper_credits"},
	})
}

func BenchmarkE7BidScalability(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E7BidScalability(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"n1000_broadcast_msgs": {"n=1000 broadcast", "bid_messages"},
		"n1000_filtered_msgs":  {"n=1000 filtered", "bid_messages"},
	})
}

func BenchmarkE8TwoPhaseCommit(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E8TwoPhaseCommit(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"twophase_placed":    {"two-phase", "placed"},
		"singlephase_placed": {"single-phase", "placed"},
	})
}

// --- Micro-benchmarks: engine hot paths ---

func BenchmarkSimEngineEventChurn(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, "tick", func(*sim.Engine) {})
		e.Step()
	}
}

func BenchmarkSimEngineHeap1k(b *testing.B) {
	// Maintain a 1000-event horizon and churn through it.
	e := sim.NewEngine()
	rng := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		e.After(sim.Duration(rng.Range(0, 100)), "seed", func(en *sim.Engine) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(sim.Duration(rng.Range(0, 100)), "churn", func(*sim.Engine) {})
		e.Step()
	}
}

func BenchmarkProtocolFrameRoundTrip(b *testing.B) {
	body := protocol.Telemetry{JobID: "job-123", Time: 42.5, PEs: 64, Util: 0.93, Done: 0.5, State: "running"}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := protocol.WriteFrame(&buf, protocol.TypeTelemetry, body); err != nil {
			b.Fatal(err)
		}
		f, err := protocol.ReadFrame(&buf)
		if err != nil {
			b.Fatal(err)
		}
		var out protocol.Telemetry
		if err := protocol.Decode(f, protocol.TypeTelemetry, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocatorAllocRelease(b *testing.B) {
	al := machine.NewAllocator(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := al.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		al.Release(a)
	}
}

func BenchmarkEquipartitionSubmitFinish(b *testing.B) {
	spec := machine.Spec{Name: "m", NumPE: 256, MemPerPE: 2048, Speed: 1, CostRate: 0.01}
	s := scheduler.NewEquipartition(spec, scheduler.Config{})
	now := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := &qos.Contract{App: "p", MinPE: 2, MaxPE: 32, Work: 100}
		j := job.New(job.ID(fmt.Sprintf("j%d", i)), "u", c, now)
		s.Submit(now, j)
		now += 1
		s.Advance(now)
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	spec := workload.Default(benchSeed, 1000, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX1Preemption(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.X1Preemption(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"nopreempt_urgent_met": {"profit no-preempt", "urgent_met"},
		"preempt_urgent_met":   {"profit preempt", "urgent_met"},
		"preempt_checkpoints":  {"profit preempt", "checkpoints"},
	})
}

func BenchmarkX2GridWeather(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.X2GridWeather(benchSeed)
	}
	reportTable(b, t, map[string][2]string{
		"weather_revenue": {"weather", "revenue"},
		"util_revenue":    {"utilization", "revenue"},
	})
}

func BenchmarkGanttFindWindow(b *testing.B) {
	c := gantt.NewChart(1024)
	rng := sim.NewRNG(3)
	for i := 0; i < 200; i++ {
		start := rng.Range(0, 1000)
		_, _ = c.Reserve(start, start+rng.Range(10, 100), 1+rng.Intn(512))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.FindWindow(rng.Range(0, 1000), 50, 256, 0)
	}
}

// BenchmarkLiveBidRoundTrip measures the real wire path: client →
// Faucets Daemon bid request over loopback TCP, including the daemon's
// scheduler estimate and bid generation.
func BenchmarkLiveBidRoundTrip(b *testing.B) {
	spec := machine.Spec{Name: "bench", NumPE: 64, MemPerPE: 2048, CPUType: "x86", Speed: 1, CostRate: 0.01}
	d, err := daemon.New(daemon.Config{
		Info:      protocol.ServerInfo{Spec: spec, Apps: []string{"synth"}},
		Scheduler: scheduler.NewEquipartition(spec, scheduler.Config{}),
		TimeScale: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Start(l); err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 16, Work: 100}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var reply protocol.BidOK
		if err := protocol.Call(conn, protocol.TypeBidReq, protocol.BidReq{User: "u", Contract: c}, protocol.TypeBidOK, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryHotPath measures the instrumented fast path every
// daemon tick and RPC dispatch pays: a counter increment, a gauge store,
// and a histogram observation on pre-resolved instruments. All three
// must be allocation-free — scrapes format text, updates never do.
func BenchmarkTelemetryHotPath(b *testing.B) {
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("faucets_bench_ops_total", "bench")
	gau := reg.Gauge("faucets_bench_depth", "bench")
	his := reg.Histogram("faucets_bench_latency_seconds", "bench", nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctr.Inc()
		gau.Set(float64(i))
		his.Observe(float64(i%1000) * 0.0001)
	}
}

// BenchmarkTelemetryTraceRecord measures one span append on a warm job
// trace — the per-lifecycle-event cost inside the daemons.
func BenchmarkTelemetryTraceRecord(b *testing.B) {
	tr := telemetry.NewTracer(8)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record("job-bench", telemetry.SpanStart, "")
	}
}

// --- RPC transport benchmarks: per-call dial vs pooled connections ---

// startBenchDaemon boots a bid-serving daemon on loopback for the
// transport benchmarks.
func startBenchDaemon(b *testing.B) string {
	b.Helper()
	spec := machine.Spec{Name: "bench", NumPE: 64, MemPerPE: 2048, CPUType: "x86", Speed: 1, CostRate: 0.01}
	d, err := daemon.New(daemon.Config{
		Info:      protocol.ServerInfo{Spec: spec, Apps: []string{"synth"}},
		Scheduler: scheduler.NewEquipartition(spec, scheduler.Config{}),
		TimeScale: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Start(l); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	return l.Addr().String()
}

// BenchmarkRPCDialPerCall measures the historical transport: every bid
// request pays a fresh TCP dial, one exchange, and a close.
func BenchmarkRPCDialPerCall(b *testing.B) {
	addr := startBenchDaemon(b)
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 16, Work: 100}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var reply protocol.BidOK
		if err := protocol.DialCall(addr, 0, protocol.TypeBidReq, protocol.BidReq{User: "u", Contract: c}, protocol.TypeBidOK, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCPooled measures the same exchange over a connection pool:
// the dial is amortized across calls and replies are demultiplexed by
// frame ID. The CI bench artifact pairs this with BenchmarkRPCDialPerCall
// to keep the pooling win visible (it must stay well above 2x).
func BenchmarkRPCPooled(b *testing.B) {
	addr := startBenchDaemon(b)
	p := &protocol.Pool{}
	defer p.Close()
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 16, Work: 100}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var reply protocol.BidOK
		if err := p.Call(addr, 0, protocol.TypeBidReq, protocol.BidReq{User: "u", Contract: c}, protocol.TypeBidOK, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSustainedAuctions is the end-to-end number the CI bench
// gate guards: full §5 auctions (directory filter → request-for-bids →
// two-phase award) per second against a live two-cluster loopback grid,
// everything riding pooled connections. A regression here means the
// wire layer, the market round, or the daemons' bid path got slower.
func BenchmarkGridSustainedAuctions(b *testing.B) {
	g, err := grid.Start([]grid.ClusterSpec{
		{Spec: machine.Spec{Name: "turing", NumPE: 64, MemPerPE: 1024, CPUType: "x86", Speed: 1, CostRate: 0.010}, Apps: []string{"synth"}},
		{Spec: machine.Spec{Name: "lemieux", NumPE: 128, MemPerPE: 1024, CPUType: "x86", Speed: 1, CostRate: 0.008}, Apps: []string{"synth"}},
	}, grid.Options{Users: map[string]string{"alice": "pw"}})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	cl, err := g.Login("alice", "pw")
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	c := &qos.Contract{App: "synth", MinPE: 2, MaxPE: 8, Work: 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Place(c, market.LeastCost{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "auctions/s")
}
