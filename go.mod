module faucets

go 1.22
